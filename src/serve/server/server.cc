#include "serve/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <stdexcept>

#include <map>

#include "core/encoders.h"
#include "serve/drift_monitor.h"
#include "serve/fleet_router.h"
#include "serve/model_reloader.h"
#include "serve/stats.h"
#include "sim/rolling_speed_field.h"

namespace deepod::serve::net {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

DeepOdServer::DeepOdServer(EtaService& service, const ServerOptions& options)
    : DeepOdServer(&service, nullptr, options) {}

DeepOdServer::DeepOdServer(FleetRouter& fleet, const ServerOptions& options)
    : DeepOdServer(nullptr, &fleet, options) {}

DeepOdServer::DeepOdServer(EtaService* service, FleetRouter* fleet,
                           const ServerOptions& options)
    : service_(service),
      fleet_(fleet),
      options_(options),
      admission_(options.admission),
      accepted_(registry_.counter("server/accepted_connections")),
      rejected_conns_(registry_.counter("server/rejected_connections")),
      requests_(registry_.counter("server/requests")),
      bad_frames_(registry_.counter("server/bad_frames")),
      invalid_requests_(registry_.counter("server/invalid_requests")),
      unknown_tenants_(registry_.counter("server/unknown_tenant")),
      unknown_networks_(registry_.counter("server/unknown_network")),
      shard_cold_(registry_.counter("server/shard_cold")),
      admitted_(registry_.counter("server/admitted")),
      shed_(registry_.counter("server/shed")),
      shed_queue_full_(registry_.counter("server/shed/queue_full")),
      shed_quota_(registry_.counter("server/shed/quota")),
      shed_deadline_(registry_.counter("server/shed/deadline")),
      deadline_missed_(registry_.counter("server/deadline_missed")),
      completed_(registry_.counter("server/completed")),
      observes_(registry_.counter("server/observes")),
      observations_(registry_.counter("server/observations")),
      connections_gauge_(registry_.gauge("server/connections")),
      queue_depth_(registry_.gauge("server/queue_depth")),
      batch_fill_(registry_.histogram("server/batch_fill")),
      latency_(registry_.histogram("server/latency")) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.executors == 0) options_.executors = 1;
}

DeepOdServer::~DeepOdServer() { Shutdown(); }

void DeepOdServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("unparseable host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("bind() failed: ") +
                             std::strerror(err));
  }
  if (::listen(listen_fd_, options_.accept_backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (options_.batch_threads > 1) {
    for (size_t i = 0; i < options_.executors; ++i) {
      executor_pools_.push_back(
          std::make_unique<util::ThreadPool>(options_.batch_threads));
    }
  }
  for (size_t i = 0; i < options_.executors; ++i) {
    executor_threads_.emplace_back([this, i] { ExecutorLoop(i); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_.store(true);
}

void DeepOdServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (!started_.load() || stopping_.load()) return;
    stopping_.store(true);
  }
  // 1. Stop accepting. shutdown() unblocks the acceptor's accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // 2. Shed new offers; connection readers keep answering kShuttingDown.
  admission_.SetDraining();
  // 3. Drain: executors exit once every admitted request is answered.
  for (auto& t : executor_threads_) {
    if (t.joinable()) t.join();
  }
  // 4. Unblock and reap the connection readers.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : connections_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  std::unique_lock<std::mutex> lock(conns_mu_);
  conns_done_.wait(lock, [this] { return live_connections_ == 0; });
}

void DeepOdServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (live_connections_ >= options_.max_connections) {
        rejected_conns_.Add();
        ::close(fd);
        continue;
      }
      id = next_conn_id_++;
      connections_[id] = conn;
      ++live_connections_;
      connections_gauge_.Set(static_cast<double>(live_connections_));
    }
    accepted_.Add();
    std::thread([this, conn, id] {
      ConnectionLoop(conn);
      {
        std::lock_guard<std::mutex> write_lock(conn->write_mu);
        conn->open.store(false);
        ::close(conn->fd);
      }
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        connections_.erase(id);
        --live_connections_;
        connections_gauge_.Set(static_cast<double>(live_connections_));
      }
      conns_done_.notify_all();
    }).detach();
  }
}

void DeepOdServer::WriteResponse(const std::shared_ptr<Connection>& conn,
                                 const ResponseFrame& response) {
  const std::vector<uint8_t> wire = EncodeResponseFrame(response);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open.load()) return;
  WriteAll(conn->fd, wire.data(), wire.size());
}

void DeepOdServer::RespondError(const std::shared_ptr<Connection>& conn,
                                uint64_t request_id, Status status,
                                uint32_t retry_after_ms) {
  switch (status) {
    case Status::kBadFrame:
    case Status::kBadMagic:
    case Status::kFrameTooLarge:
      bad_frames_.Add();
      break;
    case Status::kInvalidRequest:
      invalid_requests_.Add();
      break;
    case Status::kUnknownTenant:
      unknown_tenants_.Add();
      break;
    case Status::kUnknownNetwork:
      unknown_networks_.Add();
      break;
    case Status::kShardCold:
      shard_cold_.Add();
      break;
    case Status::kDeadlineExpired:
      deadline_missed_.Add();
      break;
    case Status::kShedQueueFull:
      shed_.Add();
      shed_queue_full_.Add();
      break;
    case Status::kShedQuota:
      shed_.Add();
      shed_quota_.Add();
      break;
    case Status::kShedDeadline:
      shed_.Add();
      shed_deadline_.Add();
      break;
    case Status::kShuttingDown:
    case Status::kOk:
      break;
  }
  ResponseFrame response;
  response.request_id = request_id;
  response.status = status;
  response.retry_after_ms = retry_after_ms;
  WriteResponse(conn, response);
}

void DeepOdServer::RespondFallback(
    const std::shared_ptr<Connection>& conn, uint64_t request_id, double eta,
    Estimator estimator, std::chrono::steady_clock::time_point arrival) {
  ResponseFrame response;
  response.request_id = request_id;
  response.status = Status::kOk;
  response.estimator = estimator;
  response.eta_seconds = eta;
  latency_.Observe(SecondsSince(arrival, std::chrono::steady_clock::now()));
  completed_.Add();
  WriteResponse(conn, response);
}

void DeepOdServer::ConnectionLoop(std::shared_ptr<Connection> conn) {
  std::vector<uint8_t> payload;
  for (;;) {
    switch (ReadFrame(conn->fd, &payload, kMaxInboundFrameBytes)) {
      case ReadFrameResult::kEof:
      case ReadFrameResult::kError:
        return;
      case ReadFrameResult::kOversize:
        RespondError(conn, 0, Status::kFrameTooLarge, 0);
        continue;
      case ReadFrameResult::kOk:
        break;
    }
    const uint32_t magic = PeekMagic(payload.data(), payload.size());
    if (magic == kStatsRequestMagic && payload.size() == 4) {
      const std::vector<uint8_t> wire =
          EncodeStatsResponseFrame(ExportStatsJson());
      std::lock_guard<std::mutex> lock(conn->write_mu);
      if (conn->open.load()) WriteAll(conn->fd, wire.data(), wire.size());
      continue;
    }
    if (magic == kObserveMagic) {
      ObserveFrame observe;
      const Status observe_status =
          DecodeObservePayload(payload.data(), payload.size(), &observe);
      if (observe_status != Status::kOk) {
        RespondError(conn, observe.request_id, observe_status, 0);
        continue;
      }
      HandleObserve(conn, observe);
      continue;
    }
    RequestFrame request;
    const Status decode_status =
        DecodeRequestPayload(payload.data(), payload.size(), &request);
    if (decode_status != Status::kOk) {
      RespondError(conn, request.request_id, decode_status, 0);
      continue;
    }
    requests_.Add();
    FleetShard* shard = nullptr;
    size_t num_segments = options_.num_segments;
    if (fleet_ != nullptr) {
      shard = fleet_->Resolve(request.network_id);
      if (shard == nullptr) {
        RespondError(conn, request.request_id, Status::kUnknownNetwork, 0);
        continue;
      }
      num_segments = shard->num_segments();
    }
    const traj::OdInput& od = request.od;
    const bool segments_ok =
        num_segments == 0 ||
        (od.origin_segment < num_segments && od.dest_segment < num_segments);
    const bool fields_ok =
        std::isfinite(od.origin_ratio) && std::isfinite(od.dest_ratio) &&
        std::isfinite(od.departure_time) && od.weather_type >= 0 &&
        od.weather_type <
            static_cast<int>(core::ExternalFeaturesEncoder::kNumWeatherTypes);
    if (!segments_ok || !fields_ok) {
      RespondError(conn, request.request_id, Status::kInvalidRequest, 0);
      continue;
    }
    const auto arrival = std::chrono::steady_clock::now();
    if (request.deadline_ms < 0) {
      // Expired before it even reached the scheduler.
      RespondError(conn, request.request_id, Status::kDeadlineExpired, 0);
      continue;
    }
    if (shard != nullptr) {
      const FallbackPolicy policy = shard->policy();
      if (!shard->InDistribution(od)) {
        // The city's oracle has never seen this OD cell pair.
        if (policy == FallbackPolicy::kReject) {
          shard->CountRejected();
          RespondError(conn, request.request_id, Status::kInvalidRequest, 0);
          continue;
        }
        if (policy == FallbackPolicy::kOracle) {
          if (const auto fallback = shard->FallbackEstimate(od)) {
            shard->CountOodToOracle();
            shard->CountFallbackAnswer();
            RespondFallback(conn, request.request_id, fallback->eta,
                            fallback->estimator, arrival);
            continue;
          }
        }
        // kModel (or no fallback tier loaded): let the model extrapolate.
      }
      if (!shard->warm()) {
        if (policy == FallbackPolicy::kOracle) {
          if (const auto fallback = shard->FallbackEstimate(od)) {
            shard->CountFallbackAnswer();
            RespondFallback(conn, request.request_id, fallback->eta,
                            fallback->estimator, arrival);
            continue;
          }
        }
        shard->CountRejected();
        RespondError(conn, request.request_id, Status::kShardCold,
                     /*retry_after_ms=*/1000);
        continue;
      }
    }
    AdmittedRequest admitted;
    admitted.frame = request;
    admitted.arrival = arrival;
    admitted.deadline =
        request.deadline_ms > 0
            ? arrival + std::chrono::milliseconds(request.deadline_ms)
            : std::chrono::steady_clock::time_point::max();
    admitted.respond = [this, conn](const ResponseFrame& response) {
      WriteResponse(conn, response);
    };
    const AdmitDecision decision = admission_.Offer(std::move(admitted));
    if (decision.status == Status::kOk) {
      admitted_.Add();
      queue_depth_.Set(static_cast<double>(admission_.Depth()));
    } else if (shard != nullptr &&
               shard->policy() == FallbackPolicy::kOracle &&
               IsShed(decision.status)) {
      // Admission shed, but this city keeps a fallback tier: degrade to the
      // oracle instead of bouncing the request back to the client.
      if (const auto fallback = shard->FallbackEstimate(od)) {
        shard->CountShedToOracle();
        shard->CountFallbackAnswer();
        RespondFallback(conn, request.request_id, fallback->eta,
                        fallback->estimator, arrival);
      } else {
        RespondError(conn, request.request_id, decision.status,
                     decision.retry_after_ms);
      }
    } else {
      RespondError(conn, request.request_id, decision.status,
                   decision.retry_after_ms);
    }
  }
}

void DeepOdServer::HandleObserve(const std::shared_ptr<Connection>& conn,
                                 const ObserveFrame& frame) {
  size_t num_segments = options_.num_segments;
  if (fleet_ != nullptr) {
    const FleetShard* shard = fleet_->Resolve(frame.network_id);
    if (shard == nullptr) {
      RespondError(conn, frame.request_id, Status::kUnknownNetwork, 0);
      return;
    }
    num_segments = shard->num_segments();
  }
  const traj::OdInput& od = frame.od;
  const bool segments_ok =
      num_segments == 0 ||
      (od.origin_segment < num_segments && od.dest_segment < num_segments);
  const bool fields_ok =
      std::isfinite(od.origin_ratio) && std::isfinite(od.dest_ratio) &&
      std::isfinite(od.departure_time) &&
      std::isfinite(frame.actual_seconds) && frame.actual_seconds >= 0.0 &&
      od.weather_type >= 0 &&
      od.weather_type <
          static_cast<int>(core::ExternalFeaturesEncoder::kNumWeatherTypes);
  if (!segments_ok || !fields_ok) {
    RespondError(conn, frame.request_id, Status::kInvalidRequest, 0);
    return;
  }
  observes_.Add();
  ResponseFrame response;
  response.request_id = frame.request_id;
  response.status = Status::kOk;
  // Live hooks are single-city plumbing (one speed field, one drift gauge
  // against one model); fleet mode validates and acknowledges only.
  if (fleet_ == nullptr) {
    if (options_.live.rolling_field != nullptr &&
        !frame.observations.empty()) {
      observations_.Add(
          options_.live.rolling_field->Ingest(frame.observations));
    }
    if (options_.live.drift != nullptr) {
      // Re-score the finished trip against the model serving RIGHT NOW (one
      // synchronous forward on the connection thread — ingest traffic is
      // orders of magnitude rarer than queries) and feed the drift gauge.
      const double predicted = service_->Estimate(od);
      options_.live.drift->Observe(predicted, frame.actual_seconds);
      response.eta_seconds = predicted;
    }
  }
  WriteResponse(conn, response);
}

void DeepOdServer::ExecutorLoop(size_t slot) {
  util::ThreadPool* pool =
      executor_pools_.empty() ? nullptr : executor_pools_[slot].get();
  std::vector<AdmittedRequest> batch;
  std::vector<traj::OdInput> ods;
  std::vector<size_t> live;
  for (;;) {
    batch.clear();
    if (!admission_.PopBatch(options_.max_batch, &batch)) return;
    queue_depth_.Set(static_cast<double>(admission_.Depth()));
    const auto start = std::chrono::steady_clock::now();
    ods.clear();
    live.clear();
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline < start) {
        // Expired while queued: a deadline miss, answered without spending
        // a model forward on it.
        deadline_missed_.Add();
        ResponseFrame response;
        response.request_id = batch[i].frame.request_id;
        response.status = Status::kDeadlineExpired;
        batch[i].respond(response);
      } else {
        live.push_back(i);
        ods.push_back(batch[i].frame.od);
      }
    }
    if (ods.empty()) continue;
    batch_fill_.Observe(static_cast<double>(ods.size()));
    std::vector<double> etas;
    std::vector<Estimator> estimators(ods.size(), Estimator::kModel);
    if (fleet_ == nullptr) {
      etas = service_->EstimateBatch(ods, pool);
    } else {
      // Split the drained batch by city: each group goes through its own
      // shard's EstimateBatch (one state snapshot per shard per dispatch).
      // Only warm-shard requests are admitted and activation is one-way,
      // so the service is expected live; a defensive oracle answer covers
      // the unexpected.
      etas.assign(ods.size(), 0.0);
      std::map<uint32_t, std::vector<size_t>> groups;
      for (size_t m = 0; m < live.size(); ++m) {
        groups[batch[live[m]].frame.network_id].push_back(m);
      }
      std::vector<traj::OdInput> group_ods;
      for (const auto& [network_id, members] : groups) {
        FleetShard* shard = fleet_->Resolve(network_id);
        std::shared_ptr<EtaService> shard_service =
            shard != nullptr ? shard->service() : nullptr;
        if (shard_service != nullptr) {
          group_ods.clear();
          for (const size_t m : members) group_ods.push_back(ods[m]);
          const std::vector<double> group_etas =
              shard_service->EstimateBatch(group_ods, pool);
          for (size_t j = 0; j < members.size(); ++j) {
            etas[members[j]] = group_etas[j];
            shard->CountModelAnswer();
          }
        } else {
          for (const size_t m : members) {
            const std::optional<FleetShard::Fallback> fallback =
                shard != nullptr ? shard->FallbackEstimate(ods[m])
                                 : std::nullopt;
            if (fallback) {
              etas[m] = fallback->eta;
              estimators[m] = fallback->estimator;
              shard->CountFallbackAnswer();
            } else {
              etas[m] = 0.0;
              estimators[m] = Estimator::kModel;
              ResponseFrame response;
              response.request_id = batch[live[m]].frame.request_id;
              response.status = Status::kShardCold;
              response.retry_after_ms = 1000;
              shard_cold_.Add();
              batch[live[m]].respond(response);
              live[m] = SIZE_MAX;  // answered; skip in the Ok loop below
            }
          }
        }
      }
    }
    const auto end = std::chrono::steady_clock::now();
    admission_.RecordServiceTime(SecondsSince(start, end) /
                                 static_cast<double>(ods.size()));
    for (size_t m = 0; m < live.size(); ++m) {
      if (live[m] == SIZE_MAX) continue;
      AdmittedRequest& request = batch[live[m]];
      ResponseFrame response;
      response.request_id = request.frame.request_id;
      response.status = Status::kOk;
      response.estimator = estimators[m];
      response.eta_seconds = etas[m];
      latency_.Observe(SecondsSince(request.arrival, end));
      completed_.Add();
      request.respond(response);
    }
  }
}

std::string DeepOdServer::ExportStatsJson() const {
  StatsSources sources;
  sources.server = &registry_;
  if (fleet_ != nullptr) {
    fleet_->AppendStatsSources(&sources);
  } else {
    sources.service = service_;
    sources.reloader = options_.live.reloader;
    sources.drift = options_.live.drift;
  }
  return serve::ExportStatsJson(sources);
}

}  // namespace deepod::serve::net
