#ifndef DEEPOD_SERVE_SERVER_FRAME_H_
#define DEEPOD_SERVE_SERVER_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/rolling_speed_field.h"
#include "traj/trajectory.h"

namespace deepod::serve::net {

// Wire protocol of deepod_server, version 2 (DESIGN.md "Network serving" /
// "Fleet serving").
//
// Every frame on the wire is a 4-byte little-endian length prefix followed
// by exactly `length` payload bytes. Payloads are fixed-layout
// little-endian records identified by a leading 32-bit magic:
//
//   request  (client -> server, kRequestPayloadBytes):
//     magic u32 | request_id u64 | network_id u32 | tenant_id u32 |
//     priority u8 | deadline_ms i32 | origin_segment u64 | dest_segment u64 |
//     origin_ratio f64 | dest_ratio f64 | departure_time f64 | weather i32
//   response (server -> client, kResponsePayloadBytes):
//     magic u32 | request_id u64 | status u8 | estimator u8 |
//     retry_after_ms u32 | eta f64
//   stats request  (client -> server): magic u32 alone
//   stats response (server -> client): magic u32 | the server's obs
//     registry rendered as BENCH-schema JSON (variable length)
//
// v2 added network_id to the request/observe layouts (fleet routing: which
// city's shard answers; single-network servers accept only id 0 ... their
// one configured id) and the estimator tag to responses (which tier
// produced the ETA — the learned model or a fallback estimator). The magics
// are unchanged: a v1-sized request decodes as kBadFrame — a typed,
// connection-preserving rejection, not a silent misparse, because every
// fixed-layout payload is length-checked exactly.
//
// deadline_ms is the client's remaining latency budget relative to server
// receipt: > 0 = budget in milliseconds, 0 = no deadline, < 0 = already
// expired when sent (the server answers kDeadlineExpired without queueing).
// Doubles travel as raw IEEE-754 bit patterns, so an ETA survives the wire
// bit-for-bit.
//
// Error handling is connection-preserving by construction: the length
// prefix always tells the server how many bytes to consume, so a truncated
// payload, a wrong magic or an oversized frame each produce one typed
// error response and leave the stream in sync for the next frame. Only a
// broken length prefix (EOF mid-frame) kills the connection.

inline constexpr uint32_t kRequestMagic = 0xD33B0D10u;
inline constexpr uint32_t kResponseMagic = 0xD33B0D11u;
inline constexpr uint32_t kStatsRequestMagic = 0xD33B0D12u;
inline constexpr uint32_t kStatsResponseMagic = 0xD33B0D13u;
inline constexpr uint32_t kObserveMagic = 0xD33B0D14u;

// Hard ceiling on inbound frame payloads. Larger declared lengths are
// drained in bounded chunks (never buffered whole) and answered with
// kFrameTooLarge.
inline constexpr uint32_t kMaxInboundFrameBytes = 4096;

enum class Status : uint8_t {
  kOk = 0,
  kBadFrame = 1,         // payload malformed / truncated vs. the layout
  kBadMagic = 2,         // unknown leading magic
  kFrameTooLarge = 3,    // declared length above kMaxInboundFrameBytes
  kInvalidRequest = 4,   // od fields out of range for the served network
  kUnknownTenant = 5,    // tenant id outside the configured quota table
  kDeadlineExpired = 6,  // expired on arrival or while queued
  kShedQueueFull = 7,    // admission queue at capacity
  kShedQuota = 8,        // per-tenant token bucket empty
  kShedDeadline = 9,     // estimated queue wait exceeds the deadline
  kShuttingDown = 10,    // server draining; request not admitted
  kUnknownNetwork = 11,  // network_id not in the fleet manifest
  kShardCold = 12,       // shard has no model yet and its policy forbids
                         // the oracle fallback (model | reject)
};

const char* StatusName(Status s);

// Which estimator tier produced a response's ETA (response frame tag).
enum class Estimator : uint8_t {
  kModel = 0,     // the learned DeepOD model
  kOracle = 1,    // the OD-histogram fallback oracle
  kLinkMean = 2,  // the link-mean PathTTE fallback
};

const char* EstimatorName(Estimator e);

// Shed statuses carry a retry_after_ms hint: the client should back off
// and retry instead of treating the answer as a hard failure.
inline bool IsShed(Status s) {
  return s == Status::kShedQueueFull || s == Status::kShedQuota ||
         s == Status::kShedDeadline;
}

struct RequestFrame {
  uint64_t request_id = 0;
  uint32_t network_id = 0;  // fleet routing id (v2)
  uint32_t tenant_id = 0;
  uint8_t priority = 1;     // 0 = interactive, 1 = normal, 2 = best-effort
  int32_t deadline_ms = 0;  // see header comment
  traj::OdInput od;         // matched fields only (segments/ratios/time/weather)
};

inline constexpr uint8_t kNumPriorities = 3;

struct ResponseFrame {
  uint64_t request_id = 0;
  Status status = Status::kOk;
  Estimator estimator = Estimator::kModel;  // which tier answered (v2)
  uint32_t retry_after_ms = 0;  // only meaningful when IsShed(status)
  double eta_seconds = 0.0;     // only meaningful when status == kOk
};

inline constexpr size_t kRequestPayloadBytes =
    4 + 8 + 4 + 4 + 1 + 4 + 8 + 8 + 8 + 8 + 8 + 4;  // = 69
inline constexpr size_t kResponsePayloadBytes = 4 + 8 + 1 + 1 + 4 + 8;  // = 26

// --- ObserveTrip ingest ------------------------------------------------------
//
// A completed trip reported back to the server (client -> server):
//
//   observe (kObservePayloadHeaderBytes + n_observations * 24):
//     magic u32 | request_id u64 | network_id u32 | origin_segment u64 |
//     dest_segment u64 | origin_ratio f64 | dest_ratio f64 |
//     departure_time f64 | weather i32 | actual_seconds f64 |
//     n_observations u32 |
//     n_observations x { segment u64 | time f64 | speed_mps f64 }
//
// The OD block mirrors the request layout so the server can re-score the
// trip against its current model (the drift monitor's prediction/actual
// pair); the per-segment observations feed the RollingSpeedField. The
// server answers with a standard response frame: status kOk and
// eta_seconds = the prediction used for drift scoring (0 when the server
// has no drift monitor), so a reporting client sees what the serving model
// currently believes about the trip it just completed. n_observations is
// bounded by the frame ceiling — chunk longer trips across frames.

struct ObserveFrame {
  uint64_t request_id = 0;
  uint32_t network_id = 0;       // fleet routing id (v2)
  traj::OdInput od;              // the trip's OD query, as in RequestFrame
  double actual_seconds = 0.0;   // observed door-to-door travel time
  std::vector<sim::TripObservation> observations;
};

inline constexpr size_t kObservePayloadHeaderBytes =
    4 + 8 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 8 + 4;  // = 72
inline constexpr size_t kObservationBytes = 8 + 8 + 8;  // = 24
inline constexpr size_t kMaxObservationsPerFrame =
    (kMaxInboundFrameBytes - kObservePayloadHeaderBytes) / kObservationBytes;

// Encoders emit the full wire frame (length prefix included).
std::vector<uint8_t> EncodeRequestFrame(const RequestFrame& frame);
std::vector<uint8_t> EncodeResponseFrame(const ResponseFrame& frame);
std::vector<uint8_t> EncodeStatsRequestFrame();
std::vector<uint8_t> EncodeStatsResponseFrame(std::string_view json);
// Throws std::invalid_argument past kMaxObservationsPerFrame.
std::vector<uint8_t> EncodeObserveFrame(const ObserveFrame& frame);

// First 4 payload bytes as a little-endian magic; 0 when size < 4.
uint32_t PeekMagic(const uint8_t* data, size_t size);

// Decodes a request payload (length prefix already stripped). Returns kOk
// on success, else the typed error the server should answer with. On a
// kBadFrame whose payload still holds the id field, out->request_id is
// recovered so the error response can be correlated by the client.
Status DecodeRequestPayload(const uint8_t* data, size_t size,
                            RequestFrame* out);
// Client side; false on a malformed payload.
bool DecodeResponsePayload(const uint8_t* data, size_t size,
                           ResponseFrame* out);

// Decodes an observe payload (length prefix stripped). kOk on success, else
// the typed error to answer with; request_id is recovered on truncated
// payloads that still hold the id bytes.
Status DecodeObservePayload(const uint8_t* data, size_t size,
                            ObserveFrame* out);

// --- Blocking socket helpers (EINTR-safe, SIGPIPE-suppressed) --------------

bool ReadExact(int fd, void* buf, size_t n);
bool WriteAll(int fd, const void* buf, size_t n);

enum class ReadFrameResult {
  kOk,        // *payload holds the declared bytes
  kOversize,  // declared length > max_bytes; payload bytes were drained
  kEof,       // clean EOF before a length prefix
  kError,     // short read mid-frame or socket error
};

// Reads one length-prefixed frame into *payload (resized to the declared
// length, capped by max_bytes). Oversized payloads are consumed in bounded
// chunks so the stream stays in sync.
ReadFrameResult ReadFrame(int fd, std::vector<uint8_t>* payload,
                          uint32_t max_bytes);

}  // namespace deepod::serve::net

#endif  // DEEPOD_SERVE_SERVER_FRAME_H_
