#ifndef DEEPOD_SERVE_SERVER_ADMISSION_H_
#define DEEPOD_SERVE_SERVER_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "serve/server/frame.h"

namespace deepod::serve::net {

// Deterministic token bucket. Time is an explicit monotonic-seconds
// argument (never read from a clock internally) so quota decisions are
// exactly reproducible in tests and the caller pays for one clock read per
// admission, not one per bucket.
class TokenBucket {
 public:
  // `rate_per_sec` tokens accrue continuously up to `burst`. The bucket
  // starts full. rate 0 makes the burst a hard lifetime cap — useful in
  // tests that need "exactly N requests pass" behaviour.
  TokenBucket(double rate_per_sec, double burst);

  // Consumes one token if available at `now_seconds`.
  bool TryTake(double now_seconds);

  // Seconds until one full token is available (0 when one already is).
  // Infinity-free: rate 0 reports one hour.
  double SecondsUntilNextToken(double now_seconds) const;

  double tokens(double now_seconds) const;

 private:
  void Refill(double now_seconds);

  double rate_;
  double burst_;
  double tokens_;
  double last_ = 0.0;
};

struct AdmissionOptions {
  // Shared capacity of the priority queues. A request arriving when
  // `queue_capacity` requests are already admitted is shed with
  // kShedQueueFull (never queued to death). 0 sheds everything (tests).
  size_t queue_capacity = 1024;

  // Per-tenant token buckets over tenants [0, num_tenants). 0 disables
  // quota enforcement entirely (any tenant id is admitted); with quotas
  // on, an id outside the table is kUnknownTenant.
  size_t num_tenants = 0;
  double tenant_rate = 1000.0;  // tokens (requests) per second
  double tenant_burst = 100.0;

  // Deadline-aware shedding: a request whose remaining deadline is smaller
  // than the estimated queue wait (depth ahead of it x the EWMA per-request
  // service time reported by the executor) is shed on arrival with
  // kShedDeadline instead of wasting a slot on a guaranteed miss.
  bool deadline_shedding = true;
};

// One admitted unit of work. `respond` is the completion channel the
// executor invokes exactly once (the server binds it to the originating
// connection; tests bind it to a promise).
struct AdmittedRequest {
  RequestFrame frame;
  std::chrono::steady_clock::time_point arrival{};
  // arrival + deadline budget; time_point::max() when the frame carries no
  // deadline. Checked again at dequeue: expiry while queued is a
  // deadline-miss, not a shed.
  std::chrono::steady_clock::time_point deadline{};
  std::function<void(const ResponseFrame&)> respond;
};

struct AdmitDecision {
  Status status = Status::kOk;
  uint32_t retry_after_ms = 0;  // backoff hint for shed statuses
};

// The admission/scheduler layer between the connection threads and the
// continuous-batching executor: strict-priority bounded queues with
// per-tenant token buckets and deadline-aware load shedding. Producers
// never block — a request is either admitted or shed with a typed status
// and a retry-after hint, so worst-case enqueue latency is one mutex
// acquisition. Thread-safe.
//
// Lifecycle: running -> draining -> closed. SetDraining() makes every new
// Offer() answer kShuttingDown while PopBatch() keeps handing out the
// already-admitted backlog; once the queue is empty poppers get `false`
// and the graceful shutdown can join the executors knowing every admitted
// request was answered.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const AdmissionOptions& options);

  // Admit or shed `request` (decided under one lock; never blocks).
  // On kOk the request was moved into the queue.
  AdmitDecision Offer(AdmittedRequest&& request);

  // Blocks until work is available or the queue is draining+empty. Appends
  // up to `max_n` requests to *out, highest priority class first (classes
  // may mix within one batch — the executor batches across them). Returns
  // false only when draining with nothing left.
  bool PopBatch(size_t max_n, std::vector<AdmittedRequest>* out);

  // Executor feedback: per-request service time (batch wall / batch size),
  // folded into the EWMA behind deadline shedding and retry-after hints.
  void RecordServiceTime(double seconds_per_request);
  double EwmaServiceSeconds() const;

  size_t Depth() const;

  void SetDraining();
  bool draining() const;

 private:
  double EstimatedWaitSeconds(size_t depth) const;

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::vector<std::deque<AdmittedRequest>> queues_;  // one per priority
  std::vector<TokenBucket> tenants_;
  size_t depth_ = 0;
  bool draining_ = false;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<double> ewma_service_seconds_{0.0};
};

}  // namespace deepod::serve::net

#endif  // DEEPOD_SERVE_SERVER_ADMISSION_H_
