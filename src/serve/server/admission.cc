#include "serve/server/admission.h"

#include <algorithm>
#include <cmath>

namespace deepod::serve::net {
namespace {

constexpr double kNoTokenBackoffSeconds = 3600.0;

uint32_t ToRetryAfterMs(double seconds) {
  const double ms = std::ceil(seconds * 1e3);
  if (ms <= 1.0) return 1;
  if (ms >= 4.0e9) return 4000000000u;
  return static_cast<uint32_t>(ms);
}

}  // namespace

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(std::max(0.0, rate_per_sec)),
      burst_(std::max(0.0, burst)),
      tokens_(burst_) {}

void TokenBucket::Refill(double now_seconds) {
  if (now_seconds > last_) {
    tokens_ = std::min(burst_, tokens_ + (now_seconds - last_) * rate_);
    last_ = now_seconds;
  }
}

bool TokenBucket::TryTake(double now_seconds) {
  Refill(now_seconds);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

double TokenBucket::SecondsUntilNextToken(double now_seconds) const {
  TokenBucket copy = *this;
  copy.Refill(now_seconds);
  if (copy.tokens_ >= 1.0) return 0.0;
  if (rate_ <= 0.0) return kNoTokenBackoffSeconds;
  return (1.0 - copy.tokens_) / rate_;
}

double TokenBucket::tokens(double now_seconds) const {
  TokenBucket copy = *this;
  copy.Refill(now_seconds);
  return copy.tokens_;
}

AdmissionQueue::AdmissionQueue(const AdmissionOptions& options)
    : options_(options),
      queues_(kNumPriorities),
      epoch_(std::chrono::steady_clock::now()) {
  tenants_.reserve(options_.num_tenants);
  for (size_t i = 0; i < options_.num_tenants; ++i) {
    tenants_.emplace_back(options_.tenant_rate, options_.tenant_burst);
  }
}

double AdmissionQueue::EstimatedWaitSeconds(size_t depth) const {
  return static_cast<double>(depth) *
         ewma_service_seconds_.load(std::memory_order_relaxed);
}

AdmitDecision AdmissionQueue::Offer(AdmittedRequest&& request) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) return {Status::kShuttingDown, 0};
  if (!tenants_.empty()) {
    if (request.frame.tenant_id >= tenants_.size()) {
      return {Status::kUnknownTenant, 0};
    }
    const double now_seconds =
        std::chrono::duration<double>(now - epoch_).count();
    TokenBucket& bucket = tenants_[request.frame.tenant_id];
    if (!bucket.TryTake(now_seconds)) {
      return {Status::kShedQuota,
              ToRetryAfterMs(bucket.SecondsUntilNextToken(now_seconds))};
    }
  }
  if (depth_ >= options_.queue_capacity) {
    return {Status::kShedQueueFull,
            ToRetryAfterMs(std::max(1e-3, EstimatedWaitSeconds(depth_)))};
  }
  if (options_.deadline_shedding &&
      request.deadline != std::chrono::steady_clock::time_point::max()) {
    const double budget =
        std::chrono::duration<double>(request.deadline - now).count();
    const double estimated_wait = EstimatedWaitSeconds(depth_);
    if (budget < estimated_wait) {
      return {Status::kShedDeadline, ToRetryAfterMs(estimated_wait - budget)};
    }
  }
  const uint8_t priority =
      std::min<uint8_t>(request.frame.priority, kNumPriorities - 1);
  queues_[priority].push_back(std::move(request));
  ++depth_;
  not_empty_.notify_one();
  return {Status::kOk, 0};
}

bool AdmissionQueue::PopBatch(size_t max_n, std::vector<AdmittedRequest>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return draining_ || depth_ > 0; });
  if (depth_ == 0) return false;  // draining and fully drained
  size_t taken = 0;
  for (auto& queue : queues_) {
    while (taken < max_n && !queue.empty()) {
      out->push_back(std::move(queue.front()));
      queue.pop_front();
      --depth_;
      ++taken;
    }
    if (taken == max_n) break;
  }
  return true;
}

void AdmissionQueue::RecordServiceTime(double seconds_per_request) {
  if (!(seconds_per_request >= 0.0)) return;
  // EWMA with alpha 0.2; the first sample seeds the average directly.
  double prev = ewma_service_seconds_.load(std::memory_order_relaxed);
  double next;
  do {
    next = prev == 0.0 ? seconds_per_request
                       : 0.8 * prev + 0.2 * seconds_per_request;
  } while (!ewma_service_seconds_.compare_exchange_weak(
      prev, next, std::memory_order_relaxed));
}

double AdmissionQueue::EwmaServiceSeconds() const {
  return ewma_service_seconds_.load(std::memory_order_relaxed);
}

size_t AdmissionQueue::Depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

void AdmissionQueue::SetDraining() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  not_empty_.notify_all();
}

bool AdmissionQueue::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

}  // namespace deepod::serve::net
