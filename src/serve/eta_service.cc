#include "serve/eta_service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "serve/stats.h"

namespace deepod::serve {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

EtaService::EtaService(core::DeepOdModel& model,
                       const EtaServiceOptions& options)
    : EtaService(BorrowServingState(model), options) {}

EtaService::EtaService(std::shared_ptr<ServingState> initial,
                       const EtaServiceOptions& options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      requests_(registry_.counter(options.registry_prefix + "requests")),
      hits_(registry_.counter(options.registry_prefix + "cache_hits")),
      misses_(registry_.counter(options.registry_prefix + "cache_misses")),
      batches_(registry_.counter(options.registry_prefix + "batches")),
      batched_requests_(
          registry_.counter(options.registry_prefix + "batched_requests")),
      swaps_(registry_.counter(options.registry_prefix + "swaps")),
      queue_depth_(registry_.gauge(options.registry_prefix + "queue_depth")),
      epoch_gauge_(registry_.gauge(options.registry_prefix + "epoch")),
      latency_(registry_.histogram(options.registry_prefix + "latency")),
      queue_wait_(registry_.histogram(options.registry_prefix + "queue_wait")),
      batch_assembly_(
          registry_.histogram(options.registry_prefix + "batch_assembly")),
      start_time_(std::chrono::steady_clock::now()) {
  if (!initial || initial->model == nullptr) {
    throw std::invalid_argument("EtaService: null serving state");
  }
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.ratio_bucket <= 0.0) options_.ratio_bucket = 0.05;
  initial->epoch = last_epoch_;  // construction epoch 0
  state_ = std::move(initial);
  epoch_gauge_.Set(0.0);
  if (options_.batch_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.batch_threads);
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

std::unique_ptr<EtaService> EtaService::FromArtifact(
    const std::string& artifact_path, const road::RoadNetwork& network,
    const EtaServiceOptions& options) {
  io::ArtifactOptions artifact_options;
  artifact_options.quant = options.quant;
  return std::make_unique<EtaService>(
      LoadServingState(artifact_path, network, artifact_options), options);
}

EtaService::~EtaService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::shared_ptr<const ServingState> EtaService::state() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

uint64_t EtaService::SwapState(std::shared_ptr<ServingState> fresh) {
  if (!fresh || fresh->model == nullptr) {
    throw std::invalid_argument("EtaService::SwapState: null serving state");
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  fresh->epoch = ++last_epoch_;
  state_ = std::move(fresh);
  swaps_.Add();
  epoch_gauge_.Set(static_cast<double>(state_->epoch));
  return state_->epoch;
}

uint64_t EtaService::BumpEpoch() {
  std::lock_guard<std::mutex> lock(state_mu_);
  auto fresh = std::make_shared<ServingState>(*state_);
  fresh->epoch = ++last_epoch_;
  // The speed data the model reads changed under it: memoised external
  // codes (keyed by weather/snapshot, not by matrix content) are stale.
  fresh->model->ClearOcodeMemo();
  state_ = std::move(fresh);
  epoch_gauge_.Set(static_cast<double>(state_->epoch));
  return state_->epoch;
}

OdCacheKey EtaService::MakeKeyForState(const traj::OdInput& od,
                                       const ServingState& state) const {
  OdCacheKey key;
  key.segments = (static_cast<uint64_t>(od.origin_segment) << 32) |
                 static_cast<uint64_t>(od.dest_segment & 0xffffffffull);
  const int64_t slot = state.slotter.Slot(od.departure_time);
  const uint64_t node =
      static_cast<uint64_t>(state.slotter.WeeklyNode(slot)) & 0xffffffffull;
  const auto bucket = [this](double ratio) -> uint64_t {
    const double clamped = std::clamp(ratio, 0.0, 1.0);
    return static_cast<uint64_t>(clamped / options_.ratio_bucket) & 0xffull;
  };
  key.context = (node << 32) |
                (static_cast<uint64_t>(static_cast<uint32_t>(od.weather_type) &
                                       0xffffu)
                 << 16) |
                (bucket(od.origin_ratio) << 8) | bucket(od.dest_ratio);
  key.epoch = state.epoch;
  return key;
}

OdCacheKey EtaService::MakeKey(const traj::OdInput& od) const {
  return MakeKeyForState(od, *state());
}

void EtaService::RecordCompletion(
    std::chrono::steady_clock::time_point start) {
  latency_.Observe(SecondsSince(start, std::chrono::steady_clock::now()));
  requests_.Add();
}

double EtaService::Estimate(const traj::OdInput& od) {
  const auto start = std::chrono::steady_clock::now();
  const std::shared_ptr<const ServingState> state = this->state();
  const OdCacheKey key = MakeKeyForState(od, *state);
  if (auto cached = cache_.Get(key)) {
    hits_.Add();
    RecordCompletion(start);
    return *cached;
  }
  misses_.Add();
  double eta;
  if (options_.kernel_mode.has_value()) {
    const nn::KernelModeScope scope(*options_.kernel_mode);
    eta = state->model->Predict(od);
  } else {
    eta = state->model->Predict(od);
  }
  cache_.Put(key, eta);
  RecordCompletion(start);
  return eta;
}

std::optional<std::future<double>> EtaService::TrySubmit(
    const traj::OdInput& od, std::chrono::nanoseconds timeout) {
  Pending pending;
  pending.od = od;
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<double> future = pending.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    const bool room = queue_not_full_.wait_for(lock, timeout, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (!room) return std::nullopt;  // still full after `timeout`: shed
    if (stopping_) {
      pending.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("EtaService: shutting down")));
      return future;
    }
    queue_.push_back(std::move(pending));
    queue_depth_.Set(static_cast<double>(queue_.size()));
  }
  queue_not_empty_.notify_one();
  return future;
}

std::vector<double> EtaService::EstimateBatch(
    std::span<const traj::OdInput> ods, util::ThreadPool* pool) {
  if (ods.empty()) return {};
  const auto start = std::chrono::steady_clock::now();
  // One state snapshot answers the whole batch: a concurrent SwapState
  // never splits it across models or cache generations.
  const std::shared_ptr<const ServingState> state = this->state();
  std::vector<double> out(ods.size(), 0.0);
  std::vector<size_t> miss_index;
  std::vector<traj::OdInput> miss_ods;
  std::vector<OdCacheKey> miss_keys;
  for (size_t i = 0; i < ods.size(); ++i) {
    const OdCacheKey key = MakeKeyForState(ods[i], *state);
    if (auto cached = cache_.Get(key)) {
      hits_.Add();
      out[i] = *cached;
    } else {
      misses_.Add();
      miss_index.push_back(i);
      miss_ods.push_back(ods[i]);
      miss_keys.push_back(key);
    }
  }
  batch_assembly_.Observe(
      SecondsSince(start, std::chrono::steady_clock::now()));
  if (!miss_ods.empty()) {
    std::vector<double> etas;
    if (options_.kernel_mode.has_value()) {
      const nn::KernelModeScope scope(*options_.kernel_mode);
      etas = state->model->PredictBatch(miss_ods, pool);
    } else {
      etas = state->model->PredictBatch(miss_ods, pool);
    }
    for (size_t m = 0; m < miss_index.size(); ++m) {
      cache_.Put(miss_keys[m], etas[m]);
      out[miss_index[m]] = etas[m];
    }
  }
  // Per-request latency is the whole batch's wall time — that is what a
  // caller of the batch actually waited.
  for (size_t i = 0; i < ods.size(); ++i) RecordCompletion(start);
  batches_.Add();
  batched_requests_.Add(ods.size());
  return out;
}

void EtaService::PauseDispatcherForTest(bool paused) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_for_test_ = paused;
  }
  queue_not_empty_.notify_all();
}

void EtaService::DispatchLoop() {
  std::vector<Pending> batch;
  batch.reserve(options_.max_batch);
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_not_empty_.wait(lock, [this] {
        return stopping_ || (!paused_for_test_ && !queue_.empty());
      });
      if (queue_.empty()) return;  // stopping, queue drained
      const size_t take = std::min(options_.max_batch, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_.Set(static_cast<double>(queue_.size()));
    }
    queue_not_full_.notify_all();

    // One state snapshot per drained batch: everything below — cache keys,
    // the forward, the answers cached back — is consistent with the epoch
    // current at dequeue time, even while a reloader flips the pointer.
    const std::shared_ptr<const ServingState> state = this->state();

    // Batch assembly: resolve cache hits and collect the miss list; the
    // queue-wait histogram records how long each request sat in the queue.
    const auto assembly_start = std::chrono::steady_clock::now();
    std::vector<size_t> miss_index;
    std::vector<traj::OdInput> miss_ods;
    std::vector<OdCacheKey> miss_keys;
    for (size_t i = 0; i < batch.size(); ++i) {
      queue_wait_.Observe(SecondsSince(batch[i].enqueued, assembly_start));
      const OdCacheKey key = MakeKeyForState(batch[i].od, *state);
      if (auto cached = cache_.Get(key)) {
        hits_.Add();
        // Record before set_value: a caller unblocked by the future may
        // read StatsSnapshot immediately and must see this request counted.
        RecordCompletion(batch[i].enqueued);
        batch[i].promise.set_value(*cached);
      } else {
        misses_.Add();
        miss_index.push_back(i);
        miss_ods.push_back(batch[i].od);
        miss_keys.push_back(key);
      }
    }
    const auto assembly_end = std::chrono::steady_clock::now();
    batch_assembly_.Observe(SecondsSince(assembly_start, assembly_end));
    if (obs::TraceEnabled()) {
      obs::AppendTraceEvent("serve/batch_assembly", assembly_start,
                            assembly_end);
    }
    if (!miss_ods.empty()) {
      std::vector<double> etas;
      if (options_.kernel_mode.has_value()) {
        // PredictBatch pool workers inherit the dispatcher's mode.
        const nn::KernelModeScope scope(*options_.kernel_mode);
        etas = state->model->PredictBatch(miss_ods, pool_.get());
      } else {
        etas = state->model->PredictBatch(miss_ods, pool_.get());
      }
      for (size_t m = 0; m < miss_index.size(); ++m) {
        cache_.Put(miss_keys[m], etas[m]);
        RecordCompletion(batch[miss_index[m]].enqueued);
        batch[miss_index[m]].promise.set_value(etas[m]);
      }
      if (obs::TraceEnabled()) {
        obs::AppendTraceEvent("serve/batch_predict", assembly_end,
                              std::chrono::steady_clock::now());
      }
    }
    batches_.Add();
    batched_requests_.Add(batch.size());
  }
}

EtaServiceStats EtaService::StatsSnapshot() const {
  EtaServiceStats stats;
  stats.requests = requests_.Value();
  stats.cache_hits = hits_.Value();
  stats.cache_misses = misses_.Value();
  stats.batches = batches_.Value();
  const uint64_t batched = batched_requests_.Value();
  stats.avg_batch_size =
      stats.batches == 0
          ? 0.0
          : static_cast<double>(batched) / static_cast<double>(stats.batches);
  stats.swaps = swaps_.Value();
  stats.epoch = state()->epoch;
  stats.p50_ms = latency_.Percentile(0.50) * 1e3;
  stats.p95_ms = latency_.Percentile(0.95) * 1e3;
  stats.p99_ms = latency_.Percentile(0.99) * 1e3;
  const double elapsed =
      SecondsSince(start_time_, std::chrono::steady_clock::now());
  stats.qps = elapsed > 0.0 ? static_cast<double>(stats.requests) / elapsed
                            : 0.0;
  return stats;
}

std::string EtaService::ExportJson() const {
  StatsSources sources;
  sources.service = this;
  return ExportStatsJson(sources);
}

std::string EtaService::ExportPrometheus() const {
  return registry_.ExportPrometheus(options_.registry_prefix);
}

}  // namespace deepod::serve
