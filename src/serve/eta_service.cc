#include "serve/eta_service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.h"

namespace deepod::serve {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

EtaService::EtaService(core::DeepOdModel& model,
                       const EtaServiceOptions& options)
    : model_(model),
      options_(options),
      slotter_(0.0, model.config().slot_seconds),
      cache_(options.cache_capacity, options.cache_shards),
      requests_(registry_.counter("serve/requests")),
      hits_(registry_.counter("serve/cache_hits")),
      misses_(registry_.counter("serve/cache_misses")),
      batches_(registry_.counter("serve/batches")),
      batched_requests_(registry_.counter("serve/batched_requests")),
      queue_depth_(registry_.gauge("serve/queue_depth")),
      latency_(registry_.histogram("serve/latency")),
      queue_wait_(registry_.histogram("serve/queue_wait")),
      batch_assembly_(registry_.histogram("serve/batch_assembly")),
      start_time_(std::chrono::steady_clock::now()) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.ratio_bucket <= 0.0) options_.ratio_bucket = 0.05;
  if (options_.batch_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.batch_threads);
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

std::unique_ptr<EtaService> EtaService::FromArtifact(
    const std::string& artifact_path, const road::RoadNetwork& network,
    const EtaServiceOptions& options) {
  io::ArtifactOptions artifact_options;
  artifact_options.quant = options.quant;
  io::ServingModel bundle =
      io::LoadModelArtifact(artifact_path, network, artifact_options);
  // Bind the service to the heap-allocated model first, then hand the
  // bundle over: the unique_ptr move keeps the pointee address stable, so
  // model_ stays valid for the service's lifetime.
  auto service =
      std::unique_ptr<EtaService>(new EtaService(*bundle.model, options));
  service->owned_ = std::move(bundle);
  return service;
}

EtaService::~EtaService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

OdCacheKey EtaService::MakeKey(const traj::OdInput& od) const {
  OdCacheKey key;
  key.segments = (static_cast<uint64_t>(od.origin_segment) << 32) |
                 static_cast<uint64_t>(od.dest_segment & 0xffffffffull);
  const int64_t slot = slotter_.Slot(od.departure_time);
  const uint64_t node =
      static_cast<uint64_t>(slotter_.WeeklyNode(slot)) & 0xffffffffull;
  const auto bucket = [this](double ratio) -> uint64_t {
    const double clamped = std::clamp(ratio, 0.0, 1.0);
    return static_cast<uint64_t>(clamped / options_.ratio_bucket) & 0xffull;
  };
  key.context = (node << 32) |
                (static_cast<uint64_t>(static_cast<uint32_t>(od.weather_type) &
                                       0xffffu)
                 << 16) |
                (bucket(od.origin_ratio) << 8) | bucket(od.dest_ratio);
  return key;
}

void EtaService::RecordCompletion(
    std::chrono::steady_clock::time_point start) {
  latency_.Observe(SecondsSince(start, std::chrono::steady_clock::now()));
  requests_.Add();
}

double EtaService::Estimate(const traj::OdInput& od) {
  const auto start = std::chrono::steady_clock::now();
  const OdCacheKey key = MakeKey(od);
  if (auto cached = cache_.Get(key)) {
    hits_.Add();
    RecordCompletion(start);
    return *cached;
  }
  misses_.Add();
  double eta;
  if (options_.kernel_mode.has_value()) {
    const nn::KernelModeScope scope(*options_.kernel_mode);
    eta = model_.Predict(od);
  } else {
    eta = model_.Predict(od);
  }
  cache_.Put(key, eta);
  RecordCompletion(start);
  return eta;
}

std::future<double> EtaService::Submit(const traj::OdInput& od) {
  Pending pending;
  pending.od = od;
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<double> future = pending.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_not_full_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_) {
      pending.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("EtaService: shutting down")));
      return future;
    }
    queue_.push_back(std::move(pending));
    queue_depth_.Set(static_cast<double>(queue_.size()));
  }
  queue_not_empty_.notify_one();
  return future;
}

std::optional<std::future<double>> EtaService::TrySubmit(
    const traj::OdInput& od, std::chrono::nanoseconds timeout) {
  Pending pending;
  pending.od = od;
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<double> future = pending.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    const bool room = queue_not_full_.wait_for(lock, timeout, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (!room) return std::nullopt;  // still full after `timeout`: shed
    if (stopping_) {
      pending.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("EtaService: shutting down")));
      return future;
    }
    queue_.push_back(std::move(pending));
    queue_depth_.Set(static_cast<double>(queue_.size()));
  }
  queue_not_empty_.notify_one();
  return future;
}

std::vector<double> EtaService::EstimateBatch(
    std::span<const traj::OdInput> ods, util::ThreadPool* pool) {
  if (ods.empty()) return {};
  const auto start = std::chrono::steady_clock::now();
  std::vector<double> out(ods.size(), 0.0);
  std::vector<size_t> miss_index;
  std::vector<traj::OdInput> miss_ods;
  std::vector<OdCacheKey> miss_keys;
  for (size_t i = 0; i < ods.size(); ++i) {
    const OdCacheKey key = MakeKey(ods[i]);
    if (auto cached = cache_.Get(key)) {
      hits_.Add();
      out[i] = *cached;
    } else {
      misses_.Add();
      miss_index.push_back(i);
      miss_ods.push_back(ods[i]);
      miss_keys.push_back(key);
    }
  }
  batch_assembly_.Observe(
      SecondsSince(start, std::chrono::steady_clock::now()));
  if (!miss_ods.empty()) {
    std::vector<double> etas;
    if (options_.kernel_mode.has_value()) {
      const nn::KernelModeScope scope(*options_.kernel_mode);
      etas = model_.PredictBatch(miss_ods, pool);
    } else {
      etas = model_.PredictBatch(miss_ods, pool);
    }
    for (size_t m = 0; m < miss_index.size(); ++m) {
      cache_.Put(miss_keys[m], etas[m]);
      out[miss_index[m]] = etas[m];
    }
  }
  // Per-request latency is the whole batch's wall time — that is what a
  // caller of the batch actually waited.
  for (size_t i = 0; i < ods.size(); ++i) RecordCompletion(start);
  batches_.Add();
  batched_requests_.Add(ods.size());
  return out;
}

void EtaService::PauseDispatcherForTest(bool paused) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_for_test_ = paused;
  }
  queue_not_empty_.notify_all();
}

void EtaService::DispatchLoop() {
  std::vector<Pending> batch;
  batch.reserve(options_.max_batch);
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_not_empty_.wait(lock, [this] {
        return stopping_ || (!paused_for_test_ && !queue_.empty());
      });
      if (queue_.empty()) return;  // stopping, queue drained
      const size_t take = std::min(options_.max_batch, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_.Set(static_cast<double>(queue_.size()));
    }
    queue_not_full_.notify_all();

    // Batch assembly: resolve cache hits and collect the miss list; the
    // queue-wait histogram records how long each request sat in the queue.
    const auto assembly_start = std::chrono::steady_clock::now();
    std::vector<size_t> miss_index;
    std::vector<traj::OdInput> miss_ods;
    std::vector<OdCacheKey> miss_keys;
    for (size_t i = 0; i < batch.size(); ++i) {
      queue_wait_.Observe(SecondsSince(batch[i].enqueued, assembly_start));
      const OdCacheKey key = MakeKey(batch[i].od);
      if (auto cached = cache_.Get(key)) {
        hits_.Add();
        // Record before set_value: a caller unblocked by the future may
        // read StatsSnapshot immediately and must see this request counted.
        RecordCompletion(batch[i].enqueued);
        batch[i].promise.set_value(*cached);
      } else {
        misses_.Add();
        miss_index.push_back(i);
        miss_ods.push_back(batch[i].od);
        miss_keys.push_back(key);
      }
    }
    const auto assembly_end = std::chrono::steady_clock::now();
    batch_assembly_.Observe(SecondsSince(assembly_start, assembly_end));
    if (obs::TraceEnabled()) {
      obs::AppendTraceEvent("serve/batch_assembly", assembly_start,
                            assembly_end);
    }
    if (!miss_ods.empty()) {
      std::vector<double> etas;
      if (options_.kernel_mode.has_value()) {
        // PredictBatch pool workers inherit the dispatcher's mode.
        const nn::KernelModeScope scope(*options_.kernel_mode);
        etas = model_.PredictBatch(miss_ods, pool_.get());
      } else {
        etas = model_.PredictBatch(miss_ods, pool_.get());
      }
      for (size_t m = 0; m < miss_index.size(); ++m) {
        cache_.Put(miss_keys[m], etas[m]);
        RecordCompletion(batch[miss_index[m]].enqueued);
        batch[miss_index[m]].promise.set_value(etas[m]);
      }
      if (obs::TraceEnabled()) {
        obs::AppendTraceEvent("serve/batch_predict", assembly_end,
                              std::chrono::steady_clock::now());
      }
    }
    batches_.Add();
    batched_requests_.Add(batch.size());
  }
}

EtaServiceStats EtaService::StatsSnapshot() const {
  EtaServiceStats stats;
  stats.requests = requests_.Value();
  stats.cache_hits = hits_.Value();
  stats.cache_misses = misses_.Value();
  stats.batches = batches_.Value();
  const uint64_t batched = batched_requests_.Value();
  stats.avg_batch_size =
      stats.batches == 0
          ? 0.0
          : static_cast<double>(batched) / static_cast<double>(stats.batches);
  stats.p50_ms = latency_.Percentile(0.50) * 1e3;
  stats.p95_ms = latency_.Percentile(0.95) * 1e3;
  stats.p99_ms = latency_.Percentile(0.99) * 1e3;
  const double elapsed =
      SecondsSince(start_time_, std::chrono::steady_clock::now());
  stats.qps = elapsed > 0.0 ? static_cast<double>(stats.requests) / elapsed
                            : 0.0;
  return stats;
}

std::string EtaService::ExportJson() const {
  return registry_.ExportJson("serve/");
}

std::string EtaService::ExportPrometheus() const {
  return registry_.ExportPrometheus("serve/");
}

}  // namespace deepod::serve
