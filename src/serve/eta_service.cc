#include "serve/eta_service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deepod::serve {
namespace {

// Ring size for latency percentiles: large enough that p99 over a bench run
// is stable, small enough to copy cheaply in Snapshot().
constexpr size_t kLatencyRing = 1 << 16;

double PercentileMs(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

EtaService::EtaService(core::DeepOdModel& model,
                       const EtaServiceOptions& options)
    : model_(model),
      options_(options),
      slotter_(0.0, model.config().slot_seconds),
      cache_(options.cache_capacity, options.cache_shards),
      start_time_(std::chrono::steady_clock::now()) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.ratio_bucket <= 0.0) options_.ratio_bucket = 0.05;
  if (options_.batch_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.batch_threads);
  }
  latency_ring_ms_.assign(kLatencyRing, 0.0);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

EtaService::~EtaService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

OdCacheKey EtaService::MakeKey(const traj::OdInput& od) const {
  OdCacheKey key;
  key.segments = (static_cast<uint64_t>(od.origin_segment) << 32) |
                 static_cast<uint64_t>(od.dest_segment & 0xffffffffull);
  const int64_t slot = slotter_.Slot(od.departure_time);
  const uint64_t node =
      static_cast<uint64_t>(slotter_.WeeklyNode(slot)) & 0xffffffffull;
  const auto bucket = [this](double ratio) -> uint64_t {
    const double clamped = std::clamp(ratio, 0.0, 1.0);
    return static_cast<uint64_t>(clamped / options_.ratio_bucket) & 0xffull;
  };
  key.context = (node << 32) |
                (static_cast<uint64_t>(static_cast<uint32_t>(od.weather_type) &
                                       0xffffu)
                 << 16) |
                (bucket(od.origin_ratio) << 8) | bucket(od.dest_ratio);
  return key;
}

void EtaService::RecordLatency(std::chrono::steady_clock::time_point start) {
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  completed_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_ring_ms_[latency_count_ % kLatencyRing] = ms;
  ++latency_count_;
}

double EtaService::Estimate(const traj::OdInput& od) {
  const auto start = std::chrono::steady_clock::now();
  const OdCacheKey key = MakeKey(od);
  if (auto cached = cache_.Get(key)) {
    RecordLatency(start);
    return *cached;
  }
  const double eta = model_.Predict(od);
  cache_.Put(key, eta);
  RecordLatency(start);
  return eta;
}

std::future<double> EtaService::Submit(const traj::OdInput& od) {
  Pending pending;
  pending.od = od;
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<double> future = pending.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_not_full_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_) {
      pending.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("EtaService: shutting down")));
      return future;
    }
    queue_.push_back(std::move(pending));
  }
  queue_not_empty_.notify_one();
  return future;
}

void EtaService::DispatchLoop() {
  std::vector<Pending> batch;
  batch.reserve(options_.max_batch);
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_not_empty_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      const size_t take = std::min(options_.max_batch, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    queue_not_full_.notify_all();

    // Resolve cache hits, then answer all misses with one batched forward.
    std::vector<size_t> miss_index;
    std::vector<traj::OdInput> miss_ods;
    std::vector<OdCacheKey> miss_keys;
    for (size_t i = 0; i < batch.size(); ++i) {
      const OdCacheKey key = MakeKey(batch[i].od);
      if (auto cached = cache_.Get(key)) {
        batch[i].promise.set_value(*cached);
        RecordLatency(batch[i].enqueued);
      } else {
        miss_index.push_back(i);
        miss_ods.push_back(batch[i].od);
        miss_keys.push_back(key);
      }
    }
    if (!miss_ods.empty()) {
      const std::vector<double> etas =
          model_.PredictBatch(miss_ods, pool_.get());
      for (size_t m = 0; m < miss_index.size(); ++m) {
        cache_.Put(miss_keys[m], etas[m]);
        batch[miss_index[m]].promise.set_value(etas[m]);
        RecordLatency(batch[miss_index[m]].enqueued);
      }
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  }
}

EtaServiceStats EtaService::Snapshot() const {
  EtaServiceStats stats;
  stats.requests = completed_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.batches = batches_.load(std::memory_order_relaxed);
  const uint64_t batched = batched_requests_.load(std::memory_order_relaxed);
  stats.avg_batch_size =
      stats.batches == 0
          ? 0.0
          : static_cast<double>(batched) / static_cast<double>(stats.batches);
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(latency_count_, kLatencyRing));
    window.assign(latency_ring_ms_.begin(), latency_ring_ms_.begin() + n);
  }
  std::sort(window.begin(), window.end());
  stats.p50_ms = PercentileMs(window, 0.50);
  stats.p95_ms = PercentileMs(window, 0.95);
  stats.p99_ms = PercentileMs(window, 0.99);
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_time_)
                             .count();
  stats.qps = elapsed > 0.0 ? static_cast<double>(stats.requests) / elapsed
                            : 0.0;
  return stats;
}

}  // namespace deepod::serve
