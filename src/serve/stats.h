#ifndef DEEPOD_SERVE_STATS_H_
#define DEEPOD_SERVE_STATS_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace deepod::serve {

class DriftMonitor;
class EtaService;
class ModelReloader;

// The serving stack's stat sources, each optional. One serving process has
// up to four registries — the server front end's ("server/*" instruments),
// the EtaService's ("serve/*"), the ModelReloader's ("reload/*") and the
// DriftMonitor's ("drift/*") — and before this entry point existed each
// surface concatenated its own subset, so `--stats-json`, the wire stats
// frame and EtaService::ExportJson could disagree on schema and coverage.
struct StatsSources {
  const obs::Registry* server = nullptr;
  const EtaService* service = nullptr;
  const ModelReloader* reloader = nullptr;
  const DriftMonitor* drift = nullptr;
  // Additional registries merged into the same export — the fleet router
  // appends its own registry ("fleet/*") plus every warm shard's service
  // registry ("serve/<city>/*") here. Borrowed; must outlive the call.
  std::vector<const obs::Registry*> extra;
};

// Snapshot of every instrument across the non-null sources, merged and
// name-sorted into the shared BENCH-json Record schema. This is THE stats
// surface: the server's stats frame, `deepod_server --stats-json`, and
// EtaService::ExportJson all render this one collection, so every consumer
// sees the same records under the same names.
std::vector<obs::Record> CollectStats(const StatsSources& sources);

// CollectStats rendered as {"hardware_concurrency": N, "records": [...]}
// (obs::RenderRecordsJson — same schema bench emitters write, same
// validator covers it).
std::string ExportStatsJson(const StatsSources& sources);

// CollectStats rendered in the Prometheus text exposition format.
std::string ExportStatsPrometheus(const StatsSources& sources);

}  // namespace deepod::serve

#endif  // DEEPOD_SERVE_STATS_H_
