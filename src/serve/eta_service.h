#ifndef DEEPOD_SERVE_ETA_SERVICE_H_
#define DEEPOD_SERVE_ETA_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/deepod_model.h"
#include "io/model_artifact.h"
#include "nn/quant.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "serve/serving_state.h"
#include "temporal/time_slot.h"
#include "traj/trajectory.h"
#include "util/lru_cache.h"
#include "util/thread_pool.h"

namespace deepod::serve {

// Cache key of one OD query. Exact (not a hash digest): two packed 64-bit
// words hold the origin/destination segment ids, the weekly time-slot node,
// the weather category and the quantised position ratios, so two queries
// share a key only when every keyed field matches — no collision aliasing.
// `epoch` is the serving-state generation the answer was computed under:
// a model swap or speed-field publish bumps the epoch, which makes every
// older entry unreachable without touching the cache itself.
struct OdCacheKey {
  uint64_t segments = 0;  // origin << 32 | dest
  uint64_t context = 0;   // slot << 32 | weather << 16 | r1_bucket << 8 | rn_bucket
  uint64_t epoch = 0;     // ServingState::epoch the entry belongs to

  bool operator==(const OdCacheKey& other) const {
    return segments == other.segments && context == other.context &&
           epoch == other.epoch;
  }
};

struct OdCacheKeyHash {
  size_t operator()(const OdCacheKey& k) const {
    uint64_t h = k.segments * 0x9e3779b97f4a7c15ull;
    h ^= k.context + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= k.epoch + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

struct EtaServiceOptions {
  // LRU cache over answered queries.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  // Position ratios are quantised into buckets of this width for keying
  // (two queries whose ratios fall in the same bucket share the cached
  // answer; 0.05 keeps the induced error well under the model's own).
  double ratio_bucket = 0.05;

  // Micro-batching: TrySubmit() enqueues into a bounded queue; a dispatcher
  // thread drains up to `max_batch` requests at a time into one
  // PredictBatch call. When the queue holds `queue_capacity` requests the
  // enqueue waits out its timeout, then sheds (back-pressure, no unbounded
  // growth).
  size_t max_batch = 32;
  size_t queue_capacity = 1024;
  // Worker threads for the batched forward (1 = run inline on the
  // dispatcher thread).
  size_t batch_threads = 1;

  // Kernel tier used for inference (Estimate and the batched dispatcher;
  // PredictBatch workers inherit it). Unset = leave the thread's mode alone
  // — the historical behaviour, which keeps the service bit-identical to
  // direct DeepOdModel::Predict calls in the ambient mode. kSimd is always
  // safe to request: without AVX2 it runs the kVector code path.
  std::optional<nn::KernelMode> kernel_mode;

  // Weight quantisation applied when the service is stood up FromArtifact
  // (forwarded as io::ArtifactOptions::quant). Ignored by the plain
  // constructor, which serves the caller's model as-is. Quantised serving
  // answers match fp64 within an MAE budget — not bit-identically — so
  // golden replay against a quantised service needs a tolerance
  // (deepod_serve --check --tolerance).
  nn::QuantMode quant = nn::QuantMode::kNone;

  // Prefix of every metric name in the service's registry. A fleet gives
  // each city shard its own prefix ("serve/<city>/") so the merged stats
  // export stays collision-free; the default keeps the historical
  // single-service names.
  std::string registry_prefix = "serve/";
};

// Counter/latency snapshot, assembled from the service's metrics registry.
// Latency percentiles are bucket estimates from a fixed-bucket histogram
// (≤12.5% relative error; see obs::Histogram); counters are exact.
struct EtaServiceStats {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t batches = 0;          // micro-batches dispatched
  double avg_batch_size = 0.0;   // requests per dispatched batch
  uint64_t swaps = 0;            // serving-state flips (SwapState)
  uint64_t epoch = 0;            // current cache generation
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;  // completed requests / seconds since construction
};

// The online estimation front-end (Algorithm 1, Estimation, as a service):
// answers OD travel-time queries from a sharded LRU cache, falling through
// to the model's graph-free forward on a miss. Two entry points:
//  - Estimate(): synchronous, caller-thread inference. Bit-identical to
//    DeepOdModel::Predict for the first query of each key; later queries of
//    the key return the cached answer.
//  - TrySubmit(): asynchronous with bounded-wait admission; requests are
//    micro-batched by a dispatcher thread into PredictBatch calls
//    (amortising per-query overhead) and resolved through the same cache.
//
// Live serving: the service holds its model, speed field and cache
// generation as one immutable ServingState epoch (serving_state.h). Every
// request path acquires one state snapshot for its whole unit of work, so
// SwapState() — the zero-downtime hot-swap entry point the ModelReloader
// drives — answers in-flight requests from the epoch they started on and
// new requests from the fresh one, with the epoch number keying the cache
// so stale answers are unreachable. BumpEpoch() invalidates the cache and
// the model's ocode memo without changing the model — the flip a
// RollingSpeedField publish needs.
//
// Observability: every stat lives in a private obs::Registry under the
// "serve/" prefix — counters for requests/hits/misses/batches/swaps, a
// latency histogram, queue-wait and batch-assembly histograms, queue-depth
// and epoch gauges. The registry is per-instance (stats never bleed
// between services) and always on. StatsSnapshot() is served from the
// registry; ExportJson() emits the shared BENCH-json schema through
// serve::ExportStatsJson (stats.h) — the same entry point the network
// server's stats frame and --stats-json use — and ExportPrometheus() the
// text exposition format. Thread-safe; the model must not be trained while
// the service is running.
class EtaService {
 public:
  EtaService(core::DeepOdModel& model, const EtaServiceOptions& options);

  // Adopts `initial` (un-adopted, from LoadServingState/BorrowServingState)
  // as the construction epoch. Throws std::invalid_argument on a null
  // state/model.
  EtaService(std::shared_ptr<ServingState> initial,
             const EtaServiceOptions& options);
  ~EtaService();

  // Stands a service up from a model artifact + road network alone: loads
  // the artifact (io::LoadModelArtifact), reconstructs a predict-only model
  // against `network` and returns a service owning the bundle — no training
  // dataset, traffic process or trajectory store in memory. `network` must
  // outlive the service. Throws nn::SerializeError on a corrupt or
  // mismatched artifact.
  static std::unique_ptr<EtaService> FromArtifact(
      const std::string& artifact_path, const road::RoadNetwork& network,
      const EtaServiceOptions& options);

  EtaService(const EtaService&) = delete;
  EtaService& operator=(const EtaService&) = delete;

  // Synchronous estimate in seconds.
  double Estimate(const traj::OdInput& od);

  // PRIMARY async entry point: submit with a bounded enqueue wait. When the
  // bounded queue stays full past `timeout`, returns nullopt instead of
  // blocking the producer indefinitely — a nullopt is a signal to shed the
  // request with a retry-after, so producer-side worst-case latency is
  // `timeout`, not "until the dispatcher catches up". timeout 0 is a pure
  // try-enqueue. This is the API back-pressure-aware callers (the network
  // server's admission layer, load generators) build on.
  std::optional<std::future<double>> TrySubmit(const traj::OdInput& od,
                                               std::chrono::nanoseconds timeout);

  // Synchronous batched estimate on the calling thread, through the same
  // cache and metrics as Estimate(): resolves hits, runs one PredictBatch
  // over the misses (fanned over `pool` when given), fills the cache and
  // returns one ETA per input, in order. This is the continuous-batching
  // executor's entry point (serve/server): the caller owns batch assembly
  // and scheduling; the service owns cache + model + stats. Safe to call
  // from several executor threads concurrently as long as each passes its
  // own pool (or none) — util::ThreadPool does not support concurrent
  // ParallelFor calls on one pool. The whole batch is answered from one
  // acquired ServingState, so a concurrent swap never splits a batch
  // across models.
  std::vector<double> EstimateBatch(std::span<const traj::OdInput> ods,
                                    util::ThreadPool* pool = nullptr);

  // --- Live serving -------------------------------------------------------

  // The current serving epoch. The returned snapshot stays valid (model,
  // bundle and all) for as long as the caller holds it, regardless of
  // concurrent swaps.
  std::shared_ptr<const ServingState> state() const;

  // Atomically flips the serving state to `fresh` (un-adopted; epoch is
  // assigned here) — the RCU hot-swap: new requests see the new model and
  // a new cache generation immediately, in-flight requests finish on the
  // state they acquired, the old bundle is freed when its last reference
  // drops. Returns the adopted epoch. Throws std::invalid_argument on a
  // null state/model.
  uint64_t SwapState(std::shared_ptr<ServingState> fresh);

  // Bumps the cache generation without changing the model: republishes the
  // current state under a fresh epoch and drops the model's ocode memo.
  // Call after mutating the data a model reads through its speed provider
  // (RollingSpeedField::Publish) — cached ETAs and memoised external codes
  // are stale the moment the matrices change. Returns the new epoch.
  uint64_t BumpEpoch();

  // --- Stats --------------------------------------------------------------

  EtaServiceStats StatsSnapshot() const;
  // {"hardware_concurrency": N, "records": [...]} over the serve/* metrics
  // (serve::ExportStatsJson with this service as the only source).
  std::string ExportJson() const;
  // Prometheus text exposition of the serve/* metrics.
  std::string ExportPrometheus() const;
  const obs::Registry& registry() const { return registry_; }

  // Cache key of `od` under the current epoch (acquires the state; the
  // request paths key against the state they already hold).
  OdCacheKey MakeKey(const traj::OdInput& od) const;

  // Test-only: parks the dispatcher so tests can fill the bounded queue
  // deterministically (TrySubmit timeout coverage). Unpausing resumes the
  // normal drain; pending futures then resolve as usual.
  void PauseDispatcherForTest(bool paused);

 private:
  struct Pending {
    traj::OdInput od;
    std::promise<double> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  OdCacheKey MakeKeyForState(const traj::OdInput& od,
                             const ServingState& state) const;
  void DispatchLoop();
  void RecordCompletion(std::chrono::steady_clock::time_point start);

  EtaServiceOptions options_;
  util::ShardedLruCache<OdCacheKey, double, OdCacheKeyHash> cache_;
  std::unique_ptr<util::ThreadPool> pool_;  // batched-forward workers

  // The published serving epoch (see state()/SwapState). A plain mutex
  // guards the pointer flip; readers pay one uncontended lock per unit of
  // work, which is noise next to a model forward.
  mutable std::mutex state_mu_;
  std::shared_ptr<const ServingState> state_;
  uint64_t last_epoch_ = 0;

  // Metrics (registry_ must precede the instrument references).
  obs::Registry registry_;
  obs::Counter& requests_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& batches_;
  obs::Counter& batched_requests_;
  obs::Counter& swaps_;
  obs::Gauge& queue_depth_;
  obs::Gauge& epoch_gauge_;
  obs::Histogram& latency_;         // request completion latency (seconds)
  obs::Histogram& queue_wait_;      // TrySubmit enqueue -> dispatcher dequeue
  obs::Histogram& batch_assembly_;  // cache resolution + miss-batch build

  // Bounded request queue (TrySubmit side).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool paused_for_test_ = false;
  std::thread dispatcher_;

  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace deepod::serve

#endif  // DEEPOD_SERVE_ETA_SERVICE_H_
