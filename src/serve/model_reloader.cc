#include "serve/model_reloader.h"

#include <sys/stat.h>

#include <exception>
#include <utility>

#include "nn/serialize.h"

namespace deepod::serve {

ModelReloader::ModelReloader(EtaService& service, std::string artifact_path,
                             const road::RoadNetwork& network,
                             const ModelReloaderOptions& options,
                             PrepareFn prepare)
    : service_(service),
      artifact_path_(std::move(artifact_path)),
      network_(network),
      options_(options),
      prepare_(std::move(prepare)),
      polls_(registry_.counter("reload/polls")),
      reloads_(registry_.counter("reload/reloads")),
      failures_(registry_.counter("reload/failures")),
      healthy_(registry_.gauge("reload/healthy")),
      load_seconds_(registry_.histogram("reload/load_seconds")) {
  if (options_.poll_interval <= std::chrono::milliseconds(0)) {
    options_.poll_interval = std::chrono::milliseconds(200);
  }
  if (options_.stability_polls < 1) options_.stability_polls = 1;
  healthy_.Set(1.0);
  // When the service is already serving exactly this artifact (the
  // FromArtifact + watch-same-path deployment), the file on disk IS the
  // current epoch: adopt its signature as the baseline so construction
  // never triggers a redundant reload. Any other starting state (borrowed
  // model, different source path) leaves the baseline empty and the first
  // stable signature loads.
  if (service_.state()->source == artifact_path_) {
    const FileSig sig = StatArtifact();
    if (sig.exists) attempted_sig_ = sig;
  }
  watcher_ = std::thread([this] { WatchLoop(); });
}

ModelReloader::~ModelReloader() { Stop(); }

void ModelReloader::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (watcher_.joinable()) watcher_.join();
}

ModelReloader::FileSig ModelReloader::StatArtifact() const {
  FileSig sig;
  struct stat st{};
  if (::stat(artifact_path_.c_str(), &st) != 0) return sig;
  sig.exists = true;
  sig.size = static_cast<uint64_t>(st.st_size);
  sig.inode = static_cast<uint64_t>(st.st_ino);
  sig.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
                 static_cast<int64_t>(st.st_mtim.tv_nsec);
  return sig;
}

void ModelReloader::WatchLoop() {
  FileSig candidate;  // exists == false → no candidate being tracked
  int stable_polls = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      stop_cv_.wait_for(lock, options_.poll_interval,
                        [this] { return stopping_; });
      if (stopping_) return;
    }
    polls_.Add();
    const FileSig sig = StatArtifact();
    if (!sig.exists) {
      // Transient gaps (rename in progress, artifact deleted) are not
      // errors: keep serving the current epoch and keep watching.
      candidate = FileSig{};
      stable_polls = 0;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(reload_mu_);
      if (attempted_sig_ && sig == *attempted_sig_) {
        candidate = FileSig{};
        stable_polls = 0;
        continue;
      }
    }
    if (candidate.exists && sig == candidate) {
      ++stable_polls;
    } else {
      candidate = sig;
      stable_polls = 1;
    }
    if (stable_polls < options_.stability_polls) continue;
    std::lock_guard<std::mutex> lock(reload_mu_);
    TryReload(sig);
    candidate = FileSig{};
    stable_polls = 0;
  }
}

bool ModelReloader::TryReload(const FileSig& sig) {
  // Remember the attempt up front: a corrupt artifact must not be re-tried
  // every poll, only a subsequent write (new signature) earns a fresh try.
  attempted_sig_ = sig;
  const auto start = std::chrono::steady_clock::now();
  try {
    std::shared_ptr<ServingState> fresh =
        LoadServingState(artifact_path_, network_, options_.artifact);
    if (prepare_) prepare_(*fresh);
    service_.SwapState(std::move(fresh));
    load_seconds_.Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    reloads_.Add();
    healthy_.Set(1.0);
    {
      std::lock_guard<std::mutex> lock(status_mu_);
      last_error_.clear();
    }
    return true;
  } catch (const nn::SerializeError& e) {
    // Typed load/validation failure — the rollback path: the service never
    // saw the broken state and keeps answering from the current epoch.
    failures_.Add();
    healthy_.Set(0.0);
    std::lock_guard<std::mutex> lock(status_mu_);
    last_error_ = e.what();
    return false;
  } catch (const std::exception& e) {
    // Anything else (bad_alloc, invalid_argument from SwapState) is still
    // a keep-serving event, just recorded with its own message.
    failures_.Add();
    healthy_.Set(0.0);
    std::lock_guard<std::mutex> lock(status_mu_);
    last_error_ = e.what();
    return false;
  }
}

bool ModelReloader::ReloadNow() {
  const FileSig sig = StatArtifact();
  if (!sig.exists) {
    std::lock_guard<std::mutex> lock(status_mu_);
    last_error_ = "artifact not found: " + artifact_path_;
    return false;
  }
  std::lock_guard<std::mutex> lock(reload_mu_);
  if (attempted_sig_ && sig == *attempted_sig_) return false;  // unchanged
  return TryReload(sig);
}

ModelReloader::Status ModelReloader::StatusSnapshot() const {
  Status status;
  status.polls = polls_.Value();
  status.reloads = reloads_.Value();
  status.failures = failures_.Value();
  status.healthy = healthy_.Value() != 0.0;
  status.epoch = service_.state()->epoch;
  std::lock_guard<std::mutex> lock(status_mu_);
  status.last_error = last_error_;
  return status;
}

}  // namespace deepod::serve
