#ifndef DEEPOD_BASELINES_TEMP_H_
#define DEEPOD_BASELINES_TEMP_H_

#include <vector>

#include "baselines/baseline.h"

namespace deepod::baselines {

// TEMP (Wang et al., SIGSPATIAL 2016): temporally weighted nearest
// neighbours. The travel time of a query OD pair is the average travel
// time of historical trips whose origin and destination both lie within a
// spatial radius and whose departure falls in the same weekly time slot;
// if too few neighbours match, the spatial radius and then the temporal
// tolerance are progressively widened (scaling the estimate by the ratio
// of straight-line distances, as the original method does).
class TempEstimator : public OdEstimator {
 public:
  struct Options {
    double initial_radius_m = 400.0;
    double max_radius_m = 3200.0;
    size_t min_neighbors = 3;
    // Weekly slot size used for temporal matching (seconds).
    double slot_seconds = 1800.0;
  };

  TempEstimator();
  explicit TempEstimator(Options options);

  std::string name() const override { return "TEMP"; }
  void Train(const sim::Dataset& dataset) override;
  double Predict(const traj::OdInput& od) const override;
  size_t ModelSizeBytes() const override;

 private:
  struct StoredTrip {
    road::Point origin;
    road::Point destination;
    int64_t weekly_slot = 0;
    double travel_time = 0.0;
    double od_distance = 0.0;
  };

  int64_t WeeklySlot(double t) const;

  Options options_;
  std::vector<StoredTrip> trips_;
  // Bucketed by weekly slot for the temporal filter.
  std::vector<std::vector<size_t>> by_slot_;
  int64_t slots_per_week_ = 0;
  double global_mean_ = 0.0;
  double global_mean_speed_ = 10.0;  // straight-line m/s fallback
};

}  // namespace deepod::baselines

#endif  // DEEPOD_BASELINES_TEMP_H_
