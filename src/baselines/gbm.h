#ifndef DEEPOD_BASELINES_GBM_H_
#define DEEPOD_BASELINES_GBM_H_

#include <vector>

#include "baselines/baseline.h"

namespace deepod::baselines {

// A single regression tree grown by exact greedy splitting on squared
// error (the building block of the GBM baseline).
class RegressionTree {
 public:
  struct Options {
    size_t max_depth = 4;
    size_t min_samples_leaf = 8;
    double min_gain = 1e-7;
  };

  RegressionTree() = default;

  // Fits on row-major features [n x d] and residual targets.
  void Fit(const std::vector<std::vector<double>>& features,
           const std::vector<double>& targets,
           const std::vector<size_t>& sample_indices, const Options& options);

  double Predict(const std::vector<double>& features) const;

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;       // -1 for leaves
    double threshold = 0.0;
    double value = 0.0;     // leaf prediction
    int left = -1;
    int right = -1;
  };

  int Build(const std::vector<std::vector<double>>& features,
            const std::vector<double>& targets, std::vector<size_t>& indices,
            size_t depth, const Options& options);

  std::vector<Node> nodes_;
};

// GBM baseline (§6.1; the paper uses XGBoost): gradient boosting of
// regression trees on the shared OD feature vector with squared loss —
// each round fits a tree to the current residuals and adds it with
// shrinkage. Early-stops on validation MAE.
class GbmEstimator : public OdEstimator {
 public:
  struct Options {
    size_t num_trees = 120;
    double learning_rate = 0.1;
    RegressionTree::Options tree;
    size_t early_stop_rounds = 15;
  };

  GbmEstimator();
  explicit GbmEstimator(Options options);

  std::string name() const override { return "GBM"; }
  void Train(const sim::Dataset& dataset) override;
  double Predict(const traj::OdInput& od) const override;
  size_t ModelSizeBytes() const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  double PredictFeatures(const std::vector<double>& f) const;

  Options options_;
  double base_prediction_ = 0.0;
  std::vector<RegressionTree> trees_;
  const road::RoadNetwork* net_ = nullptr;
};

}  // namespace deepod::baselines

#endif  // DEEPOD_BASELINES_GBM_H_
