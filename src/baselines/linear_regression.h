#ifndef DEEPOD_BASELINES_LINEAR_REGRESSION_H_
#define DEEPOD_BASELINES_LINEAR_REGRESSION_H_

#include <vector>

#include "baselines/baseline.h"

namespace deepod::baselines {

// LR baseline (§6.1): ordinary least squares over the shared OD feature
// vector, fit in closed form via the ridge-regularised normal equations
// (the feature dimension is small, so a direct solve is exact and fast).
class LinearRegressionEstimator : public OdEstimator {
 public:
  explicit LinearRegressionEstimator(double ridge_lambda = 1e-6);

  std::string name() const override { return "LR"; }
  void Train(const sim::Dataset& dataset) override;
  double Predict(const traj::OdInput& od) const override;
  size_t ModelSizeBytes() const override;

  const std::vector<double>& weights() const { return weights_; }

 private:
  double ridge_lambda_;
  std::vector<double> weights_;
  const road::RoadNetwork* net_ = nullptr;
};

// Solves (A + λI) x = b for a dense symmetric positive-definite system via
// Gaussian elimination with partial pivoting. Exposed for testing.
std::vector<double> SolveLinearSystem(std::vector<std::vector<double>> a,
                                      std::vector<double> b);

}  // namespace deepod::baselines

#endif  // DEEPOD_BASELINES_LINEAR_REGRESSION_H_
