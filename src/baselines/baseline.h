#ifndef DEEPOD_BASELINES_BASELINE_H_
#define DEEPOD_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "sim/dataset.h"
#include "traj/trajectory.h"

namespace deepod::baselines {

// Common interface of the five comparison methods of §6.1 (TEMP, LR, GBM,
// STNN, MURAT). Each trains offline on the dataset's training split and
// answers online OD queries; ModelSizeBytes feeds the Table 5 accounting.
class OdEstimator {
 public:
  virtual ~OdEstimator() = default;

  virtual std::string name() const = 0;

  // Offline training on dataset.train (validation available for tuning).
  virtual void Train(const sim::Dataset& dataset) = 0;

  // Online estimation in seconds.
  virtual double Predict(const traj::OdInput& od) const = 0;

  // Memory footprint of the trained model (Table 5 "size").
  virtual size_t ModelSizeBytes() const = 0;

  // Convenience: predictions for a batch of trips.
  std::vector<double> PredictAll(const std::vector<traj::TripRecord>& trips) const;
};

// Dense feature vector shared by the regression baselines (LR, GBM):
// normalised OD coordinates, displacement, Euclidean distance, time-of-day
// harmonics, day-of-week one-hot and the weather category. Exposed so tests
// can pin the layout.
std::vector<double> OdFeatures(const traj::OdInput& od,
                               const road::RoadNetwork& net);
size_t OdFeatureCount();

}  // namespace deepod::baselines

#endif  // DEEPOD_BASELINES_BASELINE_H_
