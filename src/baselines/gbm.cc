#include "baselines/gbm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace deepod::baselines {

void RegressionTree::Fit(const std::vector<std::vector<double>>& features,
                         const std::vector<double>& targets,
                         const std::vector<size_t>& sample_indices,
                         const Options& options) {
  nodes_.clear();
  std::vector<size_t> indices = sample_indices;
  Build(features, targets, indices, 0, options);
}

int RegressionTree::Build(const std::vector<std::vector<double>>& features,
                          const std::vector<double>& targets,
                          std::vector<size_t>& indices, size_t depth,
                          const Options& options) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  double sum = 0.0;
  for (size_t i : indices) sum += targets[i];
  const double mean =
      indices.empty() ? 0.0 : sum / static_cast<double>(indices.size());
  nodes_[node_id].value = mean;
  if (depth >= options.max_depth ||
      indices.size() < 2 * options.min_samples_leaf) {
    return node_id;
  }

  // Exact greedy split: for each feature, sort samples and scan prefix
  // sums; maximise variance reduction (equivalently sum-of-squares gain).
  const size_t d = features.empty() ? 0 : features[0].size();
  double parent_sq = 0.0;
  for (size_t i : indices) parent_sq += targets[i] * targets[i];
  const double parent_score =
      sum * sum / static_cast<double>(indices.size());

  int best_feature = -1;
  double best_threshold = 0.0, best_gain = options.min_gain;
  std::vector<size_t> sorted = indices;
  for (size_t f = 0; f < d; ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return features[a][f] < features[b][f];
    });
    double left_sum = 0.0;
    for (size_t k = 0; k + 1 < sorted.size(); ++k) {
      left_sum += targets[sorted[k]];
      const size_t left_n = k + 1;
      const size_t right_n = sorted.size() - left_n;
      if (left_n < options.min_samples_leaf ||
          right_n < options.min_samples_leaf) {
        continue;
      }
      const double lo = features[sorted[k]][f];
      const double hi = features[sorted[k + 1]][f];
      if (hi - lo < 1e-12) continue;  // cannot split between equal values
      const double right_sum = sum - left_sum;
      const double score =
          left_sum * left_sum / static_cast<double>(left_n) +
          right_sum * right_sum / static_cast<double>(right_n);
      const double gain = score - parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (lo + hi);
      }
    }
  }
  if (best_feature < 0) return node_id;

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : indices) {
    (features[i][static_cast<size_t>(best_feature)] <= best_threshold
         ? left_idx
         : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Build(features, targets, left_idx, depth + 1, options);
  nodes_[node_id].left = left;
  const int right = Build(features, targets, right_idx, depth + 1, options);
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::Predict(const std::vector<double>& features) const {
  if (nodes_.empty()) return 0.0;
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const auto& n = nodes_[static_cast<size_t>(node)];
    node = features[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                   : n.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

GbmEstimator::GbmEstimator() : GbmEstimator(Options{}) {}

GbmEstimator::GbmEstimator(Options options) : options_(options) {}

void GbmEstimator::Train(const sim::Dataset& dataset) {
  net_ = &dataset.network;
  trees_.clear();
  const size_t n = dataset.train.size();
  if (n == 0) return;
  std::vector<std::vector<double>> features(n);
  std::vector<double> labels(n);
  for (size_t i = 0; i < n; ++i) {
    features[i] = OdFeatures(dataset.train[i].od, *net_);
    labels[i] = dataset.train[i].travel_time;
  }
  base_prediction_ =
      std::accumulate(labels.begin(), labels.end(), 0.0) /
      static_cast<double>(n);

  std::vector<std::vector<double>> val_features(dataset.validation.size());
  std::vector<double> val_labels(dataset.validation.size());
  for (size_t i = 0; i < dataset.validation.size(); ++i) {
    val_features[i] = OdFeatures(dataset.validation[i].od, *net_);
    val_labels[i] = dataset.validation[i].travel_time;
  }

  std::vector<double> prediction(n, base_prediction_);
  std::vector<double> val_prediction(val_labels.size(), base_prediction_);
  std::vector<double> residual(n);
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), 0);

  double best_val_mae = std::numeric_limits<double>::infinity();
  size_t best_round = 0;
  for (size_t round = 0; round < options_.num_trees; ++round) {
    for (size_t i = 0; i < n; ++i) residual[i] = labels[i] - prediction[i];
    RegressionTree tree;
    tree.Fit(features, residual, all, options_.tree);
    for (size_t i = 0; i < n; ++i) {
      prediction[i] += options_.learning_rate * tree.Predict(features[i]);
    }
    trees_.push_back(std::move(tree));
    if (!val_labels.empty()) {
      double mae = 0.0;
      for (size_t i = 0; i < val_labels.size(); ++i) {
        val_prediction[i] +=
            options_.learning_rate * trees_.back().Predict(val_features[i]);
        mae += std::fabs(val_prediction[i] - val_labels[i]);
      }
      mae /= static_cast<double>(val_labels.size());
      if (mae < best_val_mae) {
        best_val_mae = mae;
        best_round = trees_.size();
      } else if (trees_.size() - best_round >= options_.early_stop_rounds) {
        trees_.resize(best_round);
        break;
      }
    }
  }
}

double GbmEstimator::PredictFeatures(const std::vector<double>& f) const {
  double y = base_prediction_;
  for (const auto& tree : trees_) y += options_.learning_rate * tree.Predict(f);
  return y;
}

double GbmEstimator::Predict(const traj::OdInput& od) const {
  if (net_ == nullptr) return 0.0;
  return PredictFeatures(OdFeatures(od, *net_));
}

size_t GbmEstimator::ModelSizeBytes() const {
  size_t nodes = 0;
  for (const auto& t : trees_) nodes += t.num_nodes();
  // feature + threshold + value + 2 child pointers per node.
  return nodes * (sizeof(int) * 3 + sizeof(double) * 2) + sizeof(double);
}

}  // namespace deepod::baselines
