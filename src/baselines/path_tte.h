#ifndef DEEPOD_BASELINES_PATH_TTE_H_
#define DEEPOD_BASELINES_PATH_TTE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "nn/module.h"
#include "road/road_network.h"
#include "traj/trajectory.h"

namespace deepod::baselines {

// Link-mean PathTTE estimator (SNIPPETS.md §2, after MMTEC's path-based
// travel-time baseline): each road segment gets the mean observed dwell time
// of its traversals in the training trajectories; a route's travel time is
// the sum of its links' means. OD queries without a route are answered by
// routing the free-flow shortest path first, with the first/last partial
// segments scaled by the matched ratios.
//
// Like OdOracle this is a serving-time fallback tier — trained in one
// streaming pass (Add per trajectory, Finalize once), serialized into the
// model artifact, and cheap enough to answer on the connection thread.
class LinkMeanEstimator {
 public:
  // Empty estimator for deserialisation (PrepareLoad + AppendState +
  // nn::DeserializeStateDict).
  LinkMeanEstimator() = default;

  // Accumulates the per-link dwell times of one matched trajectory.
  void Add(const traj::MatchedTrajectory& trajectory);

  // Builds per-segment means; segments never traversed in training get the
  // mean of the observed links' means so every route stays answerable.
  void Finalize(size_t num_segments);

  // Sum of link means over an explicit segment sequence.
  double PredictRoute(std::span<const size_t> segment_ids) const;

  // Routes the free-flow shortest path between the OD's matched segments and
  // sums its link means; the origin contributes (1 - origin_ratio) of its
  // mean and the destination dest_ratio of its mean. Returns the fallback
  // mean when no path exists or the segments are invalid.
  double Predict(const road::RoadNetwork& network,
                 const traj::OdInput& od) const;

  size_t num_segments() const { return means_.size(); }
  double fallback() const { return fallback_; }

  // --- Serialization (model-artifact records under `prefix`) ----------------
  // Buffers point at this object's storage; it must outlive the dict.
  void AppendState(const std::string& prefix, nn::StateDict& dict);
  void PrepareLoad(size_t num_segments);

 private:
  std::vector<double> means_;
  double fallback_ = 0.0;

  // Accumulation state (train-time only; cleared by Finalize).
  std::vector<double> sums_;
  std::vector<double> counts_;
};

}  // namespace deepod::baselines

#endif  // DEEPOD_BASELINES_PATH_TTE_H_
