#include "baselines/od_oracle.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace deepod::baselines {

namespace {

// Binary search for `key` in a sorted double-key table; returns the index or
// SIZE_MAX when absent.
size_t FindKey(const std::vector<double>& keys, double key) {
  auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return static_cast<size_t>(-1);
  return static_cast<size_t>(it - keys.begin());
}

// Extracts an accumulator map into sorted parallel (key, mean, count) arrays.
void ExtractSorted(
    const std::unordered_map<int64_t, std::pair<double, double>>& acc,
    std::vector<double>* keys, std::vector<double>* means,
    std::vector<double>* counts) {
  std::vector<int64_t> order;
  order.reserve(acc.size());
  for (const auto& [key, unused] : acc) order.push_back(key);
  std::sort(order.begin(), order.end());
  keys->clear();
  means->clear();
  counts->clear();
  keys->reserve(order.size());
  means->reserve(order.size());
  counts->reserve(order.size());
  for (int64_t key : order) {
    const auto& [sum, count] = acc.at(key);
    keys->push_back(static_cast<double>(key));
    means->push_back(count > 0.0 ? sum / count : 0.0);
    counts->push_back(count);
  }
}

}  // namespace

OdOracle::OdOracle(const road::RoadNetwork& network, const Options& options) {
  grid_cells_ = static_cast<double>(std::max<size_t>(options.grid_cells, 1));
  slot_seconds_ = options.slot_seconds > 0.0 ? options.slot_seconds : 3600.0;
  slots_per_day_ = std::max(1.0, std::ceil(86400.0 / slot_seconds_));
  road::Point lo, hi;
  network.BoundingBox(&lo, &hi);
  lo_x_ = lo.x;
  lo_y_ = lo.y;
  hi_x_ = hi.x;
  hi_y_ = hi.y;
}

bool OdOracle::CellOf(const road::Point& p, double* cell) const {
  if (grid_cells_ <= 0.0) return false;
  const double cells = grid_cells_;
  const double span_x = hi_x_ - lo_x_;
  const double span_y = hi_y_ - lo_y_;
  // Degenerate spans (single-column networks) collapse that axis to cell 0.
  double col = span_x > 0.0 ? std::floor((p.x - lo_x_) / span_x * cells) : 0.0;
  double row = span_y > 0.0 ? std::floor((p.y - lo_y_) / span_y * cells) : 0.0;
  col = std::clamp(col, 0.0, cells - 1.0);
  row = std::clamp(row, 0.0, cells - 1.0);
  *cell = row * cells + col;
  return true;
}

bool OdOracle::Locate(const road::RoadNetwork& network,
                      const traj::OdInput& od, double* pair_key,
                      double* bucket_key) const {
  if (od.origin_segment >= network.num_segments() ||
      od.dest_segment >= network.num_segments()) {
    return false;
  }
  const road::Point o =
      network.PointAlong(od.origin_segment, od.origin_ratio);
  const road::Point d = network.PointAlong(od.dest_segment, od.dest_ratio);
  double o_cell = 0.0, d_cell = 0.0;
  if (!CellOf(o, &o_cell) || !CellOf(d, &d_cell)) return false;
  const double num_cells = grid_cells_ * grid_cells_;
  double seconds_of_day = std::fmod(od.departure_time, 86400.0);
  if (seconds_of_day < 0.0) seconds_of_day += 86400.0;
  double slot = std::floor(seconds_of_day / slot_seconds_);
  slot = std::clamp(slot, 0.0, slots_per_day_ - 1.0);
  *pair_key = o_cell * num_cells + d_cell;
  *bucket_key = *pair_key * slots_per_day_ + slot;
  return true;
}

void OdOracle::Add(const road::RoadNetwork& network, const traj::OdInput& od,
                   double travel_time) {
  sum_ += travel_time;
  global_count_ += 1.0;
  double pair_key = 0.0, bucket_key = 0.0;
  if (!Locate(network, od, &pair_key, &bucket_key)) return;
  auto& bucket = acc_[static_cast<int64_t>(bucket_key)];
  bucket.first += travel_time;
  bucket.second += 1.0;
  auto& pair = pair_acc_[static_cast<int64_t>(pair_key)];
  pair.first += travel_time;
  pair.second += 1.0;
}

void OdOracle::Finalize() {
  global_mean_ = global_count_ > 0.0 ? sum_ / global_count_ : 0.0;
  ExtractSorted(acc_, &keys_, &means_, &counts_);
  ExtractSorted(pair_acc_, &pair_keys_, &pair_means_, &pair_counts_);
  acc_.clear();
  pair_acc_.clear();
}

double OdOracle::Predict(const road::RoadNetwork& network,
                         const traj::OdInput& od) const {
  double pair_key = 0.0, bucket_key = 0.0;
  if (!Locate(network, od, &pair_key, &bucket_key)) return global_mean_;
  size_t idx = FindKey(keys_, bucket_key);
  if (idx != static_cast<size_t>(-1)) return means_[idx];
  idx = FindKey(pair_keys_, pair_key);
  if (idx != static_cast<size_t>(-1)) return pair_means_[idx];
  return global_mean_;
}

bool OdOracle::InDistribution(const road::RoadNetwork& network,
                              const traj::OdInput& od) const {
  double pair_key = 0.0, bucket_key = 0.0;
  if (!Locate(network, od, &pair_key, &bucket_key)) return false;
  return FindKey(pair_keys_, pair_key) != static_cast<size_t>(-1);
}

void OdOracle::AppendState(const std::string& prefix, nn::StateDict& dict) {
  dict.AddScalarBuffer(prefix + "grid_cells", &grid_cells_);
  dict.AddScalarBuffer(prefix + "slots_per_day", &slots_per_day_);
  dict.AddScalarBuffer(prefix + "slot_seconds", &slot_seconds_);
  dict.AddScalarBuffer(prefix + "lo_x", &lo_x_);
  dict.AddScalarBuffer(prefix + "lo_y", &lo_y_);
  dict.AddScalarBuffer(prefix + "hi_x", &hi_x_);
  dict.AddScalarBuffer(prefix + "hi_y", &hi_y_);
  dict.AddScalarBuffer(prefix + "global_mean", &global_mean_);
  dict.AddScalarBuffer(prefix + "global_count", &global_count_);
  dict.AddBuffer(prefix + "keys", {keys_.size()}, keys_.data());
  dict.AddBuffer(prefix + "means", {means_.size()}, means_.data());
  dict.AddBuffer(prefix + "counts", {counts_.size()}, counts_.data());
  dict.AddBuffer(prefix + "pair_keys", {pair_keys_.size()}, pair_keys_.data());
  dict.AddBuffer(prefix + "pair_means", {pair_means_.size()},
                 pair_means_.data());
  dict.AddBuffer(prefix + "pair_counts", {pair_counts_.size()},
                 pair_counts_.data());
}

void OdOracle::PrepareLoad(size_t num_buckets, size_t num_pairs) {
  keys_.assign(num_buckets, 0.0);
  means_.assign(num_buckets, 0.0);
  counts_.assign(num_buckets, 0.0);
  pair_keys_.assign(num_pairs, 0.0);
  pair_means_.assign(num_pairs, 0.0);
  pair_counts_.assign(num_pairs, 0.0);
}

}  // namespace deepod::baselines
