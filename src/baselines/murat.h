#ifndef DEEPOD_BASELINES_MURAT_H_
#define DEEPOD_BASELINES_MURAT_H_

#include <memory>
#include <vector>

#include <functional>

#include "baselines/baseline.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "temporal/time_slot.h"

namespace deepod::baselines {

// MURAT (Li et al., KDD 2018): multi-task representation learning for OD
// travel time. Per the paper's §7.1 characterisation, MURAT (a) embeds the
// *longitude/latitude* of the origin and destination — realised here as
// learned embeddings of the spatial grid cells containing the raw points,
// pre-trained on the (undirected) grid-adjacency graph — rather than
// map-matched road segments, (b) uses an undirected daily temporal graph
// with no neighbouring-day edges, and (c) never exploits the historical
// trajectory; supervision is a multi-task head predicting both travel time
// and travel distance.
class MuratEstimator : public OdEstimator {
 public:
  struct Options {
    size_t cell_dim = 16;     // lat/lng grid-cell embedding size
    size_t time_dim = 16;
    size_t hidden_dim = 64;
    double cell_size_m = 400.0;
    double slot_seconds = 300.0;
    int epochs = 8;
    size_t batch_size = 32;
    double learning_rate = 0.01;
    double distance_loss_weight = 0.3;
    uint64_t seed = 13;
    // Optional instrumentation: invoked every eval_every optimiser steps
    // with (step, validation MAE seconds). Drives Fig. 10 / Table 3.
    std::function<void(size_t, double)> step_callback;
    size_t eval_every = 25;
  };

  MuratEstimator();
  explicit MuratEstimator(Options options);

  std::string name() const override { return "MURAT"; }
  void Train(const sim::Dataset& dataset) override;
  double Predict(const traj::OdInput& od) const override;
  size_t ModelSizeBytes() const override;

 private:
  size_t CellOf(const road::Point& p) const;
  nn::Tensor Trunk(const traj::OdInput& od) const;

  Options options_;
  const road::RoadNetwork* net_ = nullptr;
  temporal::TimeSlotter slotter_{0.0, 300.0};
  double time_scale_ = 1.0;
  double dist_scale_ = 1.0;
  road::Point grid_lo_;
  size_t grid_nx_ = 0, grid_ny_ = 0;
  std::unique_ptr<nn::Embedding> cell_embedding_;
  std::unique_ptr<nn::Embedding> time_embedding_;
  std::unique_ptr<nn::Mlp2> trunk_;
  std::unique_ptr<nn::Linear> time_head_;
  std::unique_ptr<nn::Linear> dist_head_;
};

}  // namespace deepod::baselines

#endif  // DEEPOD_BASELINES_MURAT_H_
