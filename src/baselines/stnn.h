#ifndef DEEPOD_BASELINES_STNN_H_
#define DEEPOD_BASELINES_STNN_H_

#include <memory>
#include <vector>

#include <functional>

#include "baselines/baseline.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace deepod::baselines {

// STNN (Jindal et al. 2017): a two-stage neural network that first predicts
// the travel *distance* from the raw OD coordinates, then combines the
// predicted distance with the temporal features to predict travel time.
// Per the paper's critique (§6.4), it uses no road-network information —
// only coordinates and time — which is why it trails the embedding-based
// models.
class StnnEstimator : public OdEstimator {
 public:
  struct Options {
    size_t hidden_dim = 32;
    int epochs = 8;
    size_t batch_size = 32;
    double learning_rate = 0.01;
    double distance_loss_weight = 0.3;
    uint64_t seed = 11;
    // Optional instrumentation: invoked every eval_every optimiser steps
    // with (step, validation MAE seconds). Drives Fig. 10 / Table 3.
    std::function<void(size_t, double)> step_callback;
    size_t eval_every = 25;
  };

  StnnEstimator();
  explicit StnnEstimator(Options options);

  std::string name() const override { return "STNN"; }
  void Train(const sim::Dataset& dataset) override;
  double Predict(const traj::OdInput& od) const override;
  size_t ModelSizeBytes() const override;

 private:
  // Spatial features [ox, oy, dx, dy] (normalised) and temporal features
  // (time harmonics + weekend flag).
  std::vector<double> SpatialFeatures(const traj::OdInput& od) const;
  std::vector<double> TemporalFeatures(const traj::OdInput& od) const;
  nn::Tensor ForwardDistance(const traj::OdInput& od) const;
  nn::Tensor ForwardTime(const traj::OdInput& od, const nn::Tensor& dist) const;

  Options options_;
  const road::RoadNetwork* net_ = nullptr;
  double time_scale_ = 1.0;
  double dist_scale_ = 1.0;
  std::unique_ptr<nn::Mlp2> distance_net_;
  std::unique_ptr<nn::Mlp2> time_net_;
};

}  // namespace deepod::baselines

#endif  // DEEPOD_BASELINES_STNN_H_
