#ifndef DEEPOD_BASELINES_OD_ORACLE_H_
#define DEEPOD_BASELINES_OD_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/module.h"
#include "road/road_network.h"
#include "traj/trajectory.h"

namespace deepod::baselines {

// DOT-style OD travel-time oracle (after the Origin-Destination Travel Time
// Oracle of arxiv/2307.03048): a histogram over grid-bucketed OD pairs ×
// time-of-day slots. Origin and destination are located on the network
// (PointAlong of the matched segment + ratio — the same fields a wire
// request carries), snapped to a uniform grid over the network's bounding
// box, and the departure time to a daily slot; each (o_cell, d_cell, slot)
// bucket stores the mean observed travel time.
//
// Prediction walks a progressive-widening fallback chain, so the oracle
// always answers:
//   (o_cell, d_cell, slot)  →  (o_cell, d_cell) any slot  →  global mean.
//
// This is the serving stack's availability tier: cheap (two binary
// searches), trained in one pass over the trip store (streamable — Add per
// trip, Finalize once), and serialized into the model artifact so a fleet
// shard can answer before — or instead of — the learned model
// (serve::FleetRouter). The empty-bucket test doubles as the router's
// out-of-distribution signal: an OD pair no training trip ever connected is
// exactly the query the learned model extrapolates worst on.
//
// Determinism: Add accumulates per-bucket sums in trip order and Finalize
// extracts buckets in sorted key order, so identical trip streams produce
// bit-identical tables regardless of hash-map iteration order.
class OdOracle {
 public:
  struct Options {
    // Grid resolution per axis over the network bounding box.
    size_t grid_cells = 16;
    // Daily time-slot width (seconds). 3600 = 24 slots/day.
    double slot_seconds = 3600.0;
  };

  // Empty oracle for deserialisation (PrepareLoad + AppendState +
  // nn::DeserializeStateDict).
  OdOracle() = default;

  // Geometry from the network bounding box; call Add per training trip,
  // then Finalize once.
  OdOracle(const road::RoadNetwork& network, const Options& options);

  // Accumulates one observed trip. Trips whose matched segments are invalid
  // for `network` fold into the global mean only.
  void Add(const road::RoadNetwork& network, const traj::OdInput& od,
           double travel_time);

  // Builds the sorted bucket tables from the accumulated sums. Idempotent
  // input-wise: call exactly once, after the last Add.
  void Finalize();

  // Mean travel time for the OD input via the fallback chain. Always
  // returns a finite value once at least one trip was added (0.0 for a
  // completely empty oracle).
  double Predict(const road::RoadNetwork& network,
                 const traj::OdInput& od) const;

  // True when the (o_cell, d_cell) pair was observed in training — the
  // router's OOD test (slot-exact coverage is deliberately not required;
  // a pair seen at any hour is in-distribution).
  bool InDistribution(const road::RoadNetwork& network,
                      const traj::OdInput& od) const;

  // --- Introspection ---------------------------------------------------------
  size_t grid_cells() const { return static_cast<size_t>(grid_cells_); }
  size_t slots_per_day() const { return static_cast<size_t>(slots_per_day_); }
  double slot_seconds() const { return slot_seconds_; }
  size_t num_buckets() const { return keys_.size(); }
  size_t num_pairs() const { return pair_keys_.size(); }
  double global_mean() const { return global_mean_; }
  uint64_t trips_seen() const { return static_cast<uint64_t>(global_count_); }

  // --- Serialization (model-artifact records under `prefix`) ----------------
  // Registers every field as buffers over this object's own storage; the
  // oracle must outlive the (de)serialisation call. For loading, size the
  // tables first with PrepareLoad (bucket/pair counts from the record
  // shapes), then AppendState + DeserializeStateDict.
  void AppendState(const std::string& prefix, nn::StateDict& dict);
  void PrepareLoad(size_t num_buckets, size_t num_pairs);

 private:
  // Grid cell of a point; false when the oracle has no geometry.
  bool CellOf(const road::Point& p, double* cell) const;
  // (o_cell, d_cell, slot) for an OD input located on `network`; false when
  // the matched segments are invalid.
  bool Locate(const road::RoadNetwork& network, const traj::OdInput& od,
              double* pair_key, double* bucket_key) const;

  // Geometry + aggregates, all doubles so AppendState can point straight at
  // them. Keys pack (o_cell * cells² + d_cell) * slots + slot — exact in a
  // double far beyond any realistic grid.
  double grid_cells_ = 0.0;
  double slots_per_day_ = 0.0;
  double slot_seconds_ = 3600.0;
  double lo_x_ = 0.0, lo_y_ = 0.0, hi_x_ = 0.0, hi_y_ = 0.0;
  double global_mean_ = 0.0;
  double global_count_ = 0.0;

  // Sorted-by-key bucket tables (built by Finalize / loaded from records).
  std::vector<double> keys_, means_, counts_;
  std::vector<double> pair_keys_, pair_means_, pair_counts_;

  // Accumulation state (train-time only; empty after Finalize).
  std::unordered_map<int64_t, std::pair<double, double>> acc_;       // sum,count
  std::unordered_map<int64_t, std::pair<double, double>> pair_acc_;  // sum,count
  double sum_ = 0.0;
};

}  // namespace deepod::baselines

#endif  // DEEPOD_BASELINES_OD_ORACLE_H_
