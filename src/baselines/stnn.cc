#include "baselines/stnn.h"

#include <cmath>

#include "nn/ops.h"
#include "temporal/time_slot.h"
#include "util/rng.h"

namespace deepod::baselines {

StnnEstimator::StnnEstimator() : StnnEstimator(Options{}) {}

StnnEstimator::StnnEstimator(Options options) : options_(options) {}

std::vector<double> StnnEstimator::SpatialFeatures(
    const traj::OdInput& od) const {
  road::Point lo, hi;
  net_->BoundingBox(&lo, &hi);
  const double sx = std::max(1.0, hi.x - lo.x);
  const double sy = std::max(1.0, hi.y - lo.y);
  return {(od.origin.x - lo.x) / sx, (od.origin.y - lo.y) / sy,
          (od.destination.x - lo.x) / sx, (od.destination.y - lo.y) / sy};
}

std::vector<double> StnnEstimator::TemporalFeatures(
    const traj::OdInput& od) const {
  const double day_frac =
      std::fmod(od.departure_time, temporal::kSecondsPerDay) /
      temporal::kSecondsPerDay;
  const int dow = static_cast<int>(
      std::fmod(od.departure_time, temporal::kSecondsPerWeek) /
      temporal::kSecondsPerDay);
  return {std::sin(2.0 * M_PI * day_frac), std::cos(2.0 * M_PI * day_frac),
          std::sin(4.0 * M_PI * day_frac), std::cos(4.0 * M_PI * day_frac),
          dow >= 5 ? 1.0 : 0.0};
}

nn::Tensor StnnEstimator::ForwardDistance(const traj::OdInput& od) const {
  return distance_net_->Forward(
      nn::Tensor::FromData({4}, SpatialFeatures(od)));
}

nn::Tensor StnnEstimator::ForwardTime(const traj::OdInput& od,
                                      const nn::Tensor& dist) const {
  const auto temporal_features = TemporalFeatures(od);
  const nn::Tensor tf = nn::Tensor::FromData(
      {temporal_features.size()}, temporal_features);
  return time_net_->Forward(nn::ConcatVec({dist, tf}));
}

void StnnEstimator::Train(const sim::Dataset& dataset) {
  net_ = &dataset.network;
  util::Rng rng(options_.seed);
  distance_net_ = std::make_unique<nn::Mlp2>(4, options_.hidden_dim, 1, rng);
  time_net_ = std::make_unique<nn::Mlp2>(6, options_.hidden_dim, 1, rng);

  const auto& train = dataset.train;
  if (train.empty()) return;
  double time_sum = 0.0, dist_sum = 0.0;
  for (const auto& t : train) {
    time_sum += t.travel_time;
    dist_sum += road::Distance(t.od.origin, t.od.destination);
  }
  time_scale_ = time_sum / static_cast<double>(train.size());
  dist_scale_ = std::max(1.0, dist_sum / static_cast<double>(train.size()));

  std::vector<nn::Tensor> params = distance_net_->Parameters();
  auto tp = time_net_->Parameters();
  params.insert(params.end(), tp.begin(), tp.end());
  nn::Adam optimizer(params, options_.learning_rate);

  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t bs = std::max<size_t>(1, options_.batch_size);
  size_t step = 0;
  auto maybe_eval = [&] {
    ++step;
    if (!options_.step_callback || step % options_.eval_every != 0) return;
    const size_t n = std::min<size_t>(200, dataset.validation.size());
    if (n == 0) return;
    double mae = 0.0;
    for (size_t i = 0; i < n; ++i) {
      mae += std::fabs(Predict(dataset.validation[i].od) -
                       dataset.validation[i].travel_time);
    }
    options_.step_callback(step, mae / static_cast<double>(n));
  };
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    optimizer.set_learning_rate(options_.learning_rate *
                                std::pow(0.5, epoch / 2));
    rng.Shuffle(order);
    size_t in_batch = 0;
    optimizer.ZeroGrad();
    for (size_t idx : order) {
      const auto& trip = train[idx];
      // Distance label: the trajectory's travelled length when available,
      // else the straight-line distance.
      const double dist_label =
          trip.trajectory.empty()
              ? road::Distance(trip.od.origin, trip.od.destination)
              : trip.trajectory.TravelledLength(*net_);
      const nn::Tensor dist = ForwardDistance(trip.od);
      const nn::Tensor time = ForwardTime(trip.od, dist);
      const nn::Tensor dist_loss = nn::MaeLoss(
          dist, nn::Tensor::Scalar(dist_label / dist_scale_));
      const nn::Tensor time_loss = nn::MaeLoss(
          time, nn::Tensor::Scalar(trip.travel_time / time_scale_));
      nn::Tensor loss = nn::Add(
          nn::Scale(dist_loss, options_.distance_loss_weight),
          nn::Scale(time_loss, 1.0 - options_.distance_loss_weight));
      loss = nn::Scale(loss, 1.0 / static_cast<double>(bs));
      loss.Backward();
      if (++in_batch == bs) {
        optimizer.ClipGradNorm(5.0);
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
        maybe_eval();
      }
    }
    if (in_batch > 0) {
      optimizer.ClipGradNorm(5.0);
      optimizer.Step();
      optimizer.ZeroGrad();
    }
  }
}

double StnnEstimator::Predict(const traj::OdInput& od) const {
  if (net_ == nullptr || !distance_net_) return 0.0;
  const nn::Tensor dist = ForwardDistance(od);
  return ForwardTime(od, dist).item() * time_scale_;
}

size_t StnnEstimator::ModelSizeBytes() const {
  if (!distance_net_ || !time_net_) return 0;
  size_t n = 0;
  for (const auto& p :
       const_cast<StnnEstimator*>(this)->distance_net_->Parameters()) {
    n += p.size();
  }
  for (const auto& p :
       const_cast<StnnEstimator*>(this)->time_net_->Parameters()) {
    n += p.size();
  }
  return n * sizeof(double);
}

}  // namespace deepod::baselines
