#include "baselines/murat.h"

#include <algorithm>
#include <cmath>

#include "embed/graph_embedding.h"
#include "nn/ops.h"
#include "util/rng.h"
#include "util/weighted_digraph.h"

namespace deepod::baselines {
namespace {

// Undirected 4-neighbour adjacency over a grid of nx * ny cells — the
// structure MURAT pre-trains its coordinate-cell embeddings on.
util::WeightedDigraph GridGraph(size_t nx, size_t ny) {
  util::WeightedDigraph g(nx * ny);
  for (size_t y = 0; y < ny; ++y) {
    for (size_t x = 0; x < nx; ++x) {
      const size_t id = y * nx + x;
      if (x + 1 < nx) {
        g.AddArc(id, id + 1, 1.0);
        g.AddArc(id + 1, id, 1.0);
      }
      if (y + 1 < ny) {
        g.AddArc(id, id + nx, 1.0);
        g.AddArc(id + nx, id, 1.0);
      }
    }
  }
  return g;
}

// Undirected daily temporal chain without cross-day edges (§7.1: MURAT's
// temporal graph is undirected and has no neighbouring-day links).
util::WeightedDigraph MuratTemporalGraph(int64_t slots_per_day) {
  util::WeightedDigraph g(static_cast<size_t>(slots_per_day));
  for (int64_t i = 0; i < slots_per_day; ++i) {
    const size_t a = static_cast<size_t>(i);
    const size_t b = static_cast<size_t>((i + 1) % slots_per_day);
    g.AddArc(a, b, 1.0);
    g.AddArc(b, a, 1.0);
  }
  return g;
}

}  // namespace

MuratEstimator::MuratEstimator() : MuratEstimator(Options{}) {}

MuratEstimator::MuratEstimator(Options options)
    : options_(options), slotter_(0.0, options.slot_seconds) {}

size_t MuratEstimator::CellOf(const road::Point& p) const {
  const size_t cx = static_cast<size_t>(std::clamp(
      (p.x - grid_lo_.x) / options_.cell_size_m, 0.0,
      static_cast<double>(grid_nx_ - 1)));
  const size_t cy = static_cast<size_t>(std::clamp(
      (p.y - grid_lo_.y) / options_.cell_size_m, 0.0,
      static_cast<double>(grid_ny_ - 1)));
  return cy * grid_nx_ + cx;
}

void MuratEstimator::Train(const sim::Dataset& dataset) {
  net_ = &dataset.network;
  util::Rng rng(options_.seed);

  road::Point hi;
  net_->BoundingBox(&grid_lo_, &hi);
  grid_nx_ = static_cast<size_t>(
                 std::ceil((hi.x - grid_lo_.x) / options_.cell_size_m)) + 1;
  grid_ny_ = static_cast<size_t>(
                 std::ceil((hi.y - grid_lo_.y) / options_.cell_size_m)) + 1;

  cell_embedding_ = std::make_unique<nn::Embedding>(grid_nx_ * grid_ny_,
                                                    options_.cell_dim, rng);
  {
    embed::EmbedOptions eo;
    eo.dim = options_.cell_dim;
    cell_embedding_->LoadPretrained(embed::EmbedGraph(
        GridGraph(grid_nx_, grid_ny_), embed::EmbedMethod::kNode2Vec, eo, rng));
  }
  time_embedding_ = std::make_unique<nn::Embedding>(
      static_cast<size_t>(slotter_.slots_per_day()), options_.time_dim, rng);
  {
    embed::EmbedOptions eo;
    eo.dim = options_.time_dim;
    time_embedding_->LoadPretrained(
        embed::EmbedGraph(MuratTemporalGraph(slotter_.slots_per_day()),
                          embed::EmbedMethod::kNode2Vec, eo, rng));
  }
  const size_t trunk_in = options_.cell_dim * 2 + options_.time_dim + 1;
  trunk_ = std::make_unique<nn::Mlp2>(trunk_in, options_.hidden_dim,
                                      options_.hidden_dim, rng);
  time_head_ = std::make_unique<nn::Linear>(options_.hidden_dim, 1, rng);
  dist_head_ = std::make_unique<nn::Linear>(options_.hidden_dim, 1, rng);

  const auto& train = dataset.train;
  if (train.empty()) return;
  double time_sum = 0.0, dist_sum = 0.0;
  for (const auto& t : train) {
    time_sum += t.travel_time;
    dist_sum += road::Distance(t.od.origin, t.od.destination);
  }
  time_scale_ = time_sum / static_cast<double>(train.size());
  dist_scale_ = std::max(1.0, dist_sum / static_cast<double>(train.size()));

  std::vector<nn::Tensor> params = cell_embedding_->Parameters();
  for (auto* m : std::vector<nn::Module*>{time_embedding_.get(), trunk_.get(),
                                          time_head_.get(), dist_head_.get()}) {
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  nn::Adam optimizer(params, options_.learning_rate);

  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t bs = std::max<size_t>(1, options_.batch_size);
  size_t step = 0;
  auto maybe_eval = [&] {
    ++step;
    if (!options_.step_callback || step % options_.eval_every != 0) return;
    const size_t n = std::min<size_t>(200, dataset.validation.size());
    if (n == 0) return;
    double mae = 0.0;
    for (size_t i = 0; i < n; ++i) {
      mae += std::fabs(Predict(dataset.validation[i].od) -
                       dataset.validation[i].travel_time);
    }
    options_.step_callback(step, mae / static_cast<double>(n));
  };
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    optimizer.set_learning_rate(options_.learning_rate *
                                std::pow(0.5, epoch / 2));
    rng.Shuffle(order);
    size_t in_batch = 0;
    optimizer.ZeroGrad();
    for (size_t idx : order) {
      const auto& trip = train[idx];
      const double dist_label =
          trip.trajectory.empty()
              ? road::Distance(trip.od.origin, trip.od.destination)
              : trip.trajectory.TravelledLength(*net_);
      const nn::Tensor h = Trunk(trip.od);
      const nn::Tensor time_loss = nn::MaeLoss(
          time_head_->Forward(h),
          nn::Tensor::Scalar(trip.travel_time / time_scale_));
      const nn::Tensor dist_loss = nn::MaeLoss(
          dist_head_->Forward(h), nn::Tensor::Scalar(dist_label / dist_scale_));
      nn::Tensor loss = nn::Add(
          nn::Scale(time_loss, 1.0 - options_.distance_loss_weight),
          nn::Scale(dist_loss, options_.distance_loss_weight));
      loss = nn::Scale(loss, 1.0 / static_cast<double>(bs));
      loss.Backward();
      if (++in_batch == bs) {
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
        maybe_eval();
      }
    }
    if (in_batch > 0) {
      optimizer.Step();
      optimizer.ZeroGrad();
    }
  }
}

nn::Tensor MuratEstimator::Trunk(const traj::OdInput& od) const {
  const nn::Tensor co = cell_embedding_->Forward(CellOf(od.origin));
  const nn::Tensor cd = cell_embedding_->Forward(CellOf(od.destination));
  const int64_t node = slotter_.DailyNode(slotter_.Slot(od.departure_time));
  const nn::Tensor dt = time_embedding_->Forward(static_cast<size_t>(node));
  const double tr =
      slotter_.Remainder(od.departure_time) / slotter_.slot_seconds();
  const nn::Tensor extras = nn::Tensor::FromData({1}, {tr});
  return trunk_->Forward(nn::ConcatVec({co, cd, dt, extras}));
}

double MuratEstimator::Predict(const traj::OdInput& od) const {
  if (net_ == nullptr || !trunk_) return 0.0;
  return time_head_->Forward(Trunk(od)).item() * time_scale_;
}

size_t MuratEstimator::ModelSizeBytes() const {
  if (!trunk_) return 0;
  size_t n = 0;
  auto* self = const_cast<MuratEstimator*>(this);
  for (auto* m : std::vector<nn::Module*>{
           self->cell_embedding_.get(), self->time_embedding_.get(),
           self->trunk_.get(), self->time_head_.get(), self->dist_head_.get()}) {
    n += m->NumParameters();
  }
  return n * sizeof(double);
}

}  // namespace deepod::baselines
