#include "baselines/linear_regression.h"

#include <cmath>
#include <stdexcept>

namespace deepod::baselines {

LinearRegressionEstimator::LinearRegressionEstimator(double ridge_lambda)
    : ridge_lambda_(ridge_lambda) {}

std::vector<double> SolveLinearSystem(std::vector<std::vector<double>> a,
                                      std::vector<double> b) {
  const size_t n = b.size();
  if (a.size() != n) throw std::invalid_argument("SolveLinearSystem: shape");
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      throw std::runtime_error("SolveLinearSystem: singular matrix");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double inv = 1.0 / a[col][col];
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double s = b[row];
    for (size_t c = row + 1; c < n; ++c) s -= a[row][c] * x[c];
    x[row] = s / a[row][row];
  }
  return x;
}

void LinearRegressionEstimator::Train(const sim::Dataset& dataset) {
  net_ = &dataset.network;
  const size_t d = OdFeatureCount();
  std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  for (const auto& trip : dataset.train) {
    const auto f = OdFeatures(trip.od, *net_);
    for (size_t i = 0; i < d; ++i) {
      xty[i] += f[i] * trip.travel_time;
      for (size_t j = i; j < d; ++j) xtx[i][j] += f[i] * f[j];
    }
  }
  for (size_t i = 0; i < d; ++i) {
    xtx[i][i] += ridge_lambda_ * std::max(1.0, xtx[i][i]);
    for (size_t j = 0; j < i; ++j) xtx[i][j] = xtx[j][i];
  }
  weights_ = SolveLinearSystem(std::move(xtx), std::move(xty));
}

double LinearRegressionEstimator::Predict(const traj::OdInput& od) const {
  if (weights_.empty() || net_ == nullptr) return 0.0;
  const auto f = OdFeatures(od, *net_);
  double y = 0.0;
  for (size_t i = 0; i < f.size(); ++i) y += weights_[i] * f[i];
  return y;
}

size_t LinearRegressionEstimator::ModelSizeBytes() const {
  return weights_.size() * sizeof(double);
}

}  // namespace deepod::baselines
