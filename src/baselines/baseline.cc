#include "baselines/baseline.h"

#include <cmath>

#include "temporal/time_slot.h"

namespace deepod::baselines {

std::vector<double> OdEstimator::PredictAll(
    const std::vector<traj::TripRecord>& trips) const {
  std::vector<double> out;
  out.reserve(trips.size());
  for (const auto& t : trips) out.push_back(Predict(t.od));
  return out;
}

std::vector<double> OdFeatures(const traj::OdInput& od,
                               const road::RoadNetwork& net) {
  road::Point lo, hi;
  net.BoundingBox(&lo, &hi);
  const double sx = std::max(1.0, hi.x - lo.x);
  const double sy = std::max(1.0, hi.y - lo.y);
  const double ox = (od.origin.x - lo.x) / sx;
  const double oy = (od.origin.y - lo.y) / sy;
  const double dx = (od.destination.x - lo.x) / sx;
  const double dy = (od.destination.y - lo.y) / sy;
  const double day_frac =
      std::fmod(od.departure_time, temporal::kSecondsPerDay) /
      temporal::kSecondsPerDay;
  const int dow = static_cast<int>(
      std::fmod(od.departure_time, temporal::kSecondsPerWeek) /
      temporal::kSecondsPerDay);

  std::vector<double> f;
  f.reserve(OdFeatureCount());
  // Raw OD coordinates plus temporal features — the inputs the paper's LR
  // and GBM baselines consume. Note no engineered distance feature: the
  // comparison methods (per [23, 39]) work from the raw origin/destination
  // points, which is precisely why they trail the learned representations.
  f.push_back(1.0);  // bias
  f.push_back(ox);
  f.push_back(oy);
  f.push_back(dx);
  f.push_back(dy);
  f.push_back(std::sin(2.0 * M_PI * day_frac));
  f.push_back(std::cos(2.0 * M_PI * day_frac));
  f.push_back(std::sin(4.0 * M_PI * day_frac));
  f.push_back(std::cos(4.0 * M_PI * day_frac));
  for (int d = 0; d < 7; ++d) f.push_back(d == dow ? 1.0 : 0.0);
  f.push_back(dow >= 5 ? 1.0 : 0.0);  // weekend flag
  f.push_back(static_cast<double>(od.weather_type) / 16.0);
  return f;
}

size_t OdFeatureCount() { return 18; }

}  // namespace deepod::baselines
