#include "baselines/path_tte.h"

#include <algorithm>

#include "road/routing.h"

namespace deepod::baselines {

void LinkMeanEstimator::Add(const traj::MatchedTrajectory& trajectory) {
  for (const traj::PathElement& element : trajectory.path) {
    if (element.segment_id >= sums_.size()) {
      sums_.resize(element.segment_id + 1, 0.0);
      counts_.resize(element.segment_id + 1, 0.0);
    }
    sums_[element.segment_id] += element.exit - element.enter;
    counts_[element.segment_id] += 1.0;
  }
}

void LinkMeanEstimator::Finalize(size_t num_segments) {
  sums_.resize(std::max(num_segments, sums_.size()), 0.0);
  counts_.resize(sums_.size(), 0.0);
  double mean_sum = 0.0;
  double seen = 0.0;
  for (size_t i = 0; i < sums_.size(); ++i) {
    if (counts_[i] > 0.0) {
      mean_sum += sums_[i] / counts_[i];
      seen += 1.0;
    }
  }
  fallback_ = seen > 0.0 ? mean_sum / seen : 0.0;
  means_.assign(sums_.size(), fallback_);
  for (size_t i = 0; i < sums_.size(); ++i) {
    if (counts_[i] > 0.0) means_[i] = sums_[i] / counts_[i];
  }
  sums_.clear();
  counts_.clear();
}

double LinkMeanEstimator::PredictRoute(
    std::span<const size_t> segment_ids) const {
  double total = 0.0;
  for (size_t id : segment_ids) {
    total += id < means_.size() ? means_[id] : fallback_;
  }
  return total;
}

double LinkMeanEstimator::Predict(const road::RoadNetwork& network,
                                  const traj::OdInput& od) const {
  if (od.origin_segment >= network.num_segments() ||
      od.dest_segment >= network.num_segments()) {
    return fallback_;
  }
  const double origin_mean = od.origin_segment < means_.size()
                                 ? means_[od.origin_segment]
                                 : fallback_;
  if (od.origin_segment == od.dest_segment) {
    const double span = std::max(0.0, od.dest_ratio - od.origin_ratio);
    return origin_mean * span;
  }
  const double dest_mean =
      od.dest_segment < means_.size() ? means_[od.dest_segment] : fallback_;
  double total = origin_mean * (1.0 - od.origin_ratio) +
                 dest_mean * od.dest_ratio;
  const road::Route route = road::ShortestRoute(
      network, network.segment(od.origin_segment).to,
      network.segment(od.dest_segment).from, road::FreeFlowCost);
  // Unreachable OD: the endpoint contributions are all we can say.
  total += PredictRoute(route.segment_ids);
  return total;
}

void LinkMeanEstimator::AppendState(const std::string& prefix,
                                    nn::StateDict& dict) {
  dict.AddScalarBuffer(prefix + "fallback", &fallback_);
  dict.AddBuffer(prefix + "means", {means_.size()}, means_.data());
}

void LinkMeanEstimator::PrepareLoad(size_t num_segments) {
  means_.assign(num_segments, 0.0);
}

}  // namespace deepod::baselines
