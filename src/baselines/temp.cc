#include "baselines/temp.h"

#include <algorithm>
#include <cmath>

#include "temporal/time_slot.h"

namespace deepod::baselines {

TempEstimator::TempEstimator() : TempEstimator(Options{}) {}

TempEstimator::TempEstimator(Options options) : options_(options) {}

int64_t TempEstimator::WeeklySlot(double t) const {
  const double in_week = std::fmod(t, temporal::kSecondsPerWeek);
  return static_cast<int64_t>(in_week / options_.slot_seconds);
}

void TempEstimator::Train(const sim::Dataset& dataset) {
  slots_per_week_ = static_cast<int64_t>(
      std::ceil(temporal::kSecondsPerWeek / options_.slot_seconds));
  trips_.clear();
  by_slot_.assign(static_cast<size_t>(slots_per_week_), {});
  double time_sum = 0.0, speed_sum = 0.0;
  size_t speed_count = 0;
  for (const auto& trip : dataset.train) {
    StoredTrip s;
    s.origin = trip.od.origin;
    s.destination = trip.od.destination;
    s.weekly_slot = WeeklySlot(trip.od.departure_time);
    s.travel_time = trip.travel_time;
    s.od_distance = road::Distance(trip.od.origin, trip.od.destination);
    by_slot_[static_cast<size_t>(s.weekly_slot)].push_back(trips_.size());
    trips_.push_back(s);
    time_sum += s.travel_time;
    if (s.travel_time > 0.0) {
      speed_sum += s.od_distance / s.travel_time;
      ++speed_count;
    }
  }
  if (!trips_.empty()) {
    global_mean_ = time_sum / static_cast<double>(trips_.size());
  }
  if (speed_count > 0) {
    global_mean_speed_ = speed_sum / static_cast<double>(speed_count);
  }
}

double TempEstimator::Predict(const traj::OdInput& od) const {
  if (trips_.empty()) return 0.0;
  const int64_t query_slot = WeeklySlot(od.departure_time);
  const double query_dist = road::Distance(od.origin, od.destination);

  // Progressive widening: radius doubles; slot tolerance grows from exact
  // slot to ±1, ±2 neighbouring weekly slots.
  for (int64_t slot_tol = 0; slot_tol <= 2; ++slot_tol) {
    for (double radius = options_.initial_radius_m;
         radius <= options_.max_radius_m; radius *= 2.0) {
      double weighted_sum = 0.0, weight_total = 0.0;
      size_t count = 0;
      for (int64_t ds = -slot_tol; ds <= slot_tol; ++ds) {
        const int64_t slot =
            ((query_slot + ds) % slots_per_week_ + slots_per_week_) %
            slots_per_week_;
        for (size_t idx : by_slot_[static_cast<size_t>(slot)]) {
          const auto& s = trips_[idx];
          const double d_origin = road::Distance(s.origin, od.origin);
          if (d_origin > radius) continue;
          const double d_dest = road::Distance(s.destination, od.destination);
          if (d_dest > radius) continue;
          // Scale the neighbour's time by the (clamped) distance ratio —
          // the original method's correction for not-quite-identical OD
          // pairs — and weight closer neighbours more.
          const double scale = std::clamp(
              s.od_distance > 1.0 ? query_dist / s.od_distance : 1.0, 0.6,
              1.8);
          const double weight = 1.0 / (100.0 + d_origin + d_dest);
          weighted_sum += s.travel_time * scale * weight;
          weight_total += weight;
          ++count;
        }
      }
      if (count >= options_.min_neighbors) {
        return weighted_sum / weight_total;
      }
    }
  }
  // No neighbours anywhere: straight-line distance over the mean speed.
  return query_dist / std::max(0.5, global_mean_speed_);
}

size_t TempEstimator::ModelSizeBytes() const {
  // The stored historical trips are the model (Table 5 notes TEMP's size is
  // proportional to the trip corpus).
  return trips_.size() * sizeof(StoredTrip) +
         by_slot_.size() * sizeof(std::vector<size_t>) +
         trips_.size() * sizeof(size_t);
}

}  // namespace deepod::baselines
