// Fig. 8: validation MAPE & MARE of DeepOD as each hyper-parameter width
// (d_s, d_t, d_m^1..d_m^9, d_h, d_traf) sweeps over four sizes. The paper
// sweeps {32, 64, 128, 256}; the bench profile scales widths by 8, so the
// sweep is {4, 8, 16, 32}.
#include <cstdio>
#include <functional>

#include "analysis/metrics.h"
#include "bench/common.h"
#include "core/trainer.h"
#include "core/deepod_model.h"
#include "util/table.h"

using namespace deepod;

namespace {

struct Knob {
  const char* name;
  std::function<void(core::DeepOdConfig&, size_t)> set;
};

}  // namespace

int main() {
  bench::PrintBanner(
      "Fig. 8 — validation MAPE/MARE vs hyper-parameter widths (chengdu mini "
      "profile; values are the paper's {32,64,128,256} / 8)");
  const std::vector<Knob> knobs = {
      {"ds", [](core::DeepOdConfig& c, size_t v) { c.ds = v; }},
      {"dt", [](core::DeepOdConfig& c, size_t v) { c.dt = v; }},
      {"dm1", [](core::DeepOdConfig& c, size_t v) { c.dm1 = v; }},
      {"dm2", [](core::DeepOdConfig& c, size_t v) { c.dm2 = v; }},
      {"dm3", [](core::DeepOdConfig& c, size_t v) { c.dm3 = v; }},
      {"dm4/dm8",
       [](core::DeepOdConfig& c, size_t v) { c.dm4 = c.dm8 = v; }},
      {"dm5", [](core::DeepOdConfig& c, size_t v) { c.dm5 = v; }},
      {"dm6", [](core::DeepOdConfig& c, size_t v) { c.dm6 = v; }},
      {"dm7", [](core::DeepOdConfig& c, size_t v) { c.dm7 = v; }},
      {"dm9", [](core::DeepOdConfig& c, size_t v) { c.dm9 = v; }},
      {"dh", [](core::DeepOdConfig& c, size_t v) { c.dh = v; }},
      {"dtraf", [](core::DeepOdConfig& c, size_t v) { c.dtraf = v; }},
  };

  const sim::Dataset ds = sim::BuildDataset(bench::MiniConfig(bench::City::kChengdu));
  std::vector<double> val_truth;
  for (const auto& t : ds.validation) val_truth.push_back(t.travel_time);

  util::Table table({"knob", "width", "val MAPE (%)", "val MARE (%)"});
  for (const auto& knob : knobs) {
    for (size_t width : {4u, 8u, 16u, 32u}) {
      core::DeepOdConfig config = bench::BenchModelConfig();
      config.epochs = 3;
      config.loss_weight_w = bench::BenchLossWeight(bench::City::kChengdu);
      knob.set(config, width);
      core::DeepOdModel model(config, ds);
      core::DeepOdTrainer trainer(model, ds);
      trainer.Train(nullptr, 1u << 30, 120);
      const auto pred = trainer.PredictAll(ds.validation);
      table.AddRow({knob.name, std::to_string(width),
                    util::Fmt(analysis::Mape(val_truth, pred), 2),
                    util::Fmt(analysis::Mare(val_truth, pred), 2)});
      std::fprintf(stderr, "[bench] %s=%zu done\n", knob.name, width);
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape check: each knob has a shallow optimum (errors vary by\n"
      "a few points across widths); no knob is monotonically better with\n"
      "larger widths at fixed data size.\n");
  return 0;
}
