// Fig. 14(a): MAPE vs time-slot size Δt ∈ {1, 5, 10, 30, 60} minutes on
// Chengdu. Fig. 14(b): weekly heat map of the trained time-slot embeddings
// after t-SNE to one dimension (daily/weekly periodicity should be visible).
#include <cstdio>

#include "analysis/metrics.h"
#include "analysis/tsne.h"
#include "bench/common.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "util/table.h"

using namespace deepod;

int main() {
  bench::PrintBanner("Fig. 14 — time-slot size sweep and embedding heat map");
  const sim::Dataset ds =
      sim::BuildDataset(bench::MiniConfig(bench::City::kChengdu));
  std::vector<double> truth;
  for (const auto& t : ds.test) truth.push_back(t.travel_time);

  // (a) MAPE vs Δt.
  util::Table table({"slot size (min)", "test MAPE (%)"});
  for (double minutes : {1.0, 5.0, 10.0, 30.0, 60.0}) {
    core::DeepOdConfig config = bench::BenchModelConfig();
    config.epochs = 6;
    config.slot_seconds = minutes * 60.0;
    config.loss_weight_w = bench::BenchLossWeight(bench::City::kChengdu);
    const auto result = bench::RunDeepOdVariant(
        ds, config, "dt=" + util::Fmt(minutes, 0));
    table.AddRow({util::Fmt(minutes, 0),
                  util::Fmt(analysis::Mape(truth, result.predictions), 2)});
    std::fprintf(stderr, "[bench] slot %.0f min done\n", minutes);
  }
  table.Print();
  std::printf(
      "\nPaper shape check (a): finest and coarsest slots are worse than the\n"
      "middle (5-10 min): small slots are sparse, large slots too coarse.\n");

  // (b) Heat map of t-SNE'd weekly slot embeddings (30-minute slots keep the
  // t-SNE exact-gradient run fast: 336 nodes).
  core::DeepOdConfig config = bench::BenchModelConfig();
  config.epochs = 6;
  config.slot_seconds = 1800.0;
  config.loss_weight_w = bench::BenchLossWeight(bench::City::kChengdu);
  core::DeepOdModel model(config, ds);
  core::DeepOdTrainer trainer(model, ds);
  trainer.Train(nullptr, 1u << 30, 100);

  const auto& table_tensor = model.time_slot_embedding().table();
  const size_t n = model.time_slot_embedding().num_entries();
  const size_t d = model.time_slot_embedding().dim();
  std::vector<std::vector<double>> rows(n, std::vector<double>(d));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) rows[i][j] = table_tensor.at(i, j);
  }
  analysis::TsneOptions tsne_options;
  tsne_options.iterations = 200;
  const auto projected = analysis::Tsne1d(rows, tsne_options);

  // Average every 2 consecutive 30-min slots into hourly cells: 7 x 24 map.
  std::printf("\nFig. 14(b) heat map (rows = Mon..Sun, cols = hour 0..23,\n"
              "cell = mean 1-D t-SNE coordinate of the hour's slots):\n");
  const size_t per_day = n / 7;
  for (size_t day = 0; day < 7; ++day) {
    std::printf("day %zu:", day);
    for (size_t hour = 0; hour < 24; ++hour) {
      const size_t s0 = day * per_day + hour * per_day / 24;
      const size_t s1 = day * per_day + (hour + 1) * per_day / 24;
      double mean = 0.0;
      size_t count = 0;
      for (size_t s = s0; s < s1 && s < n; ++s) {
        mean += projected[s];
        ++count;
      }
      std::printf(" %6.2f", count ? mean / static_cast<double>(count) : 0.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check (b): neighbouring hours vary smoothly and the\n"
      "same hours repeat across weekdays (daily periodicity), with weekend\n"
      "rows differing from weekday rows.\n");
  return 0;
}
