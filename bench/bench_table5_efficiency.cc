// Table 5: efficiency — model size (bytes), offline training time and
// online estimation latency (seconds per 1,000 queries) for every method
// on the three cities.
#include <cstdio>

#include "bench/common.h"
#include "util/table.h"

using namespace deepod;

int main() {
  bench::PrintBanner("Table 5 — model size / training time / estimation time");
  const std::vector<std::string> methods = {"TEMP", "LR",    "GBM",
                                            "STNN", "MURAT", "DeepOD"};
  util::Table table({"method", "city", "size", "train (s)", "estimate (s/K)"});
  for (bench::City city : bench::AllCities()) {
    const auto& run = bench::GetStandardRun(city);
    for (const auto& name : methods) {
      const auto& m = run.Method(name);
      table.AddRow({name, run.city, util::FmtBytes(m.model_bytes),
                    util::Fmt(m.train_seconds, 2),
                    util::Fmt(m.estimate_seconds_per_k, 3)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape check: TEMP's model (the stored trip corpus) dwarfs the\n"
      "parametric models and has by far the slowest online estimation; LR\n"
      "and STNN have city-independent sizes; DeepOD trains faster than\n"
      "MURAT-scale models while costing more at estimation than LR/GBM.\n");
  return 0;
}
