// Table 5: efficiency — model size (bytes), offline training time and
// online estimation latency (seconds per 1,000 queries) for every method
// on the three cities. Also measures the training-throughput effect of the
// data-parallel trainer (serial legacy kernels vs. pool + fast kernels) and
// writes every timing to BENCH_table5.json for tooling.
#include <cstdio>

#include "bench/common.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "nn/tensor.h"
#include "sim/dataset.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace deepod;

namespace {

// Trains the bench DeepOD model on `dataset` and returns the wall seconds
// of Train() alone. `sps` gets trained-samples (train size * epochs) / sec.
double TimeTraining(const sim::Dataset& dataset, size_t num_threads,
                    double* sps) {
  core::DeepOdConfig config = bench::BenchModelConfig();
  config.epochs = 6;
  config.num_threads = num_threads;
  core::DeepOdModel model(config, dataset);
  core::DeepOdTrainer trainer(model, dataset);
  util::Stopwatch sw;
  trainer.Train(nullptr, 1u << 30, 50);
  const double secs = sw.ElapsedSeconds();
  *sps = static_cast<double>(dataset.train.size() * config.epochs) / secs;
  return secs;
}

}  // namespace

int main() {
  bench::PrintBanner("Table 5 — model size / training time / estimation time");
  const std::vector<std::string> methods = {"TEMP", "LR",    "GBM",
                                            "STNN", "MURAT", "DeepOD"};
  std::vector<bench::BenchJsonRecord> records;
  const size_t auto_threads = util::ThreadPool::ResolveThreadCount(0);

  bench::PrewarmStandardRuns();
  util::Table table({"method", "city", "size", "train (s)", "estimate (s/K)"});
  for (bench::City city : bench::AllCities()) {
    const auto& run = bench::GetStandardRun(city);
    for (const auto& name : methods) {
      const auto& m = run.Method(name);
      table.AddRow({name, run.city, util::FmtBytes(m.model_bytes),
                    util::Fmt(m.train_seconds, 2),
                    util::Fmt(m.estimate_seconds_per_k, 3)});
      const size_t threads = name == "DeepOD" ? auto_threads : 1;
      // Train records carry no throughput (the per-method sample x epoch
      // counts are not recorded here); WriteBenchJson omits the field.
      records.push_back({"table5/" + run.city + "/" + name + "/train",
                         m.train_seconds, threads, 0.0});
      // Estimation latency is per 1,000 queries, so queries/sec follows.
      records.push_back({"table5/" + run.city + "/" + name + "/estimate",
                         m.estimate_seconds_per_k, threads,
                         m.estimate_seconds_per_k > 0.0
                             ? 1000.0 / m.estimate_seconds_per_k
                             : 0.0});
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape check: TEMP's model (the stored trip corpus) dwarfs the\n"
      "parametric models and has by far the slowest online estimation; LR\n"
      "and STNN have city-independent sizes; DeepOD trains faster than\n"
      "MURAT-scale models while costing more at estimation than LR/GBM.\n");

  // --- Training throughput: before (pre-threading serial) vs. after --------
  // "Before" pins one thread and the legacy kernels — the exact pre-PR
  // serial configuration. "After" is the shipped configuration: auto thread
  // count, fast kernels (the parallel trainer's workers opt into the
  // vectorised tier themselves; with one hardware thread the gain is the
  // kernel tier alone).
  const sim::Dataset mini =
      sim::BuildDataset(bench::MiniConfig(bench::City::kChengdu));
  double before_sps = 0.0, after_sps = 0.0;
  double before_secs = 0.0, after_secs = 0.0;
  {
    nn::KernelModeScope mode(nn::KernelMode::kLegacy);
    before_secs = TimeTraining(mini, 1, &before_sps);
  }
  {
    nn::KernelModeScope mode(nn::KernelMode::kVector);
    after_secs = TimeTraining(mini, 0, &after_sps);
  }
  const double speedup = before_secs / after_secs;
  std::printf(
      "\nTraining throughput (mini %s, %zu train samples x 6 epochs):\n"
      "  before (serial, legacy kernels, 1 thread): %.2f s  (%.0f samples/s)\n"
      "  after  (pool, fast kernels, %zu thread%s):  %.2f s  (%.0f samples/s)\n"
      "  speedup: %.2fx\n",
      "chengdu-sim", mini.train.size(), before_secs, before_sps, auto_threads,
      auto_threads == 1 ? "" : "s", after_secs, after_sps, speedup);

  records.push_back(
      {"deepod_train/before_serial_legacy", before_secs, 1, before_sps});
  records.push_back(
      {"deepod_train/after_parallel_fast", after_secs, auto_threads, after_sps});
  records.push_back({"deepod_train/speedup", 0.0, auto_threads, speedup});
  // Merge rather than overwrite: bench_datagen owns the datagen/* records
  // of this file and a baseline refresh must not clobber them.
  bench::MergeBenchJson("BENCH_table5.json", {"table5/", "deepod_train/"},
                        records);
  return 0;
}
