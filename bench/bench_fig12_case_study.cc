// Fig. 12: estimated vs actual travel time for 50 randomly sampled test
// trips (travel time under one hour), per method — DeepOD's points should
// hug the y = x reference line most closely.
#include <cstdio>

#include "bench/common.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

using namespace deepod;

int main() {
  bench::PrintBanner(
      "Fig. 12 — estimated vs actual time, 50 random test trips per city");
  const std::vector<std::string> methods = {"TEMP", "LR",    "GBM",
                                            "STNN", "MURAT", "DeepOD"};
  for (bench::City city : {bench::City::kChengdu, bench::City::kXian}) {
    const auto& run = bench::GetStandardRun(city);
    // Sample 50 trips under one hour.
    util::Rng rng(2024);
    std::vector<size_t> candidates;
    for (size_t i = 0; i < run.truth.size(); ++i) {
      if (run.truth[i] < 3600.0) candidates.push_back(i);
    }
    rng.Shuffle(candidates);
    candidates.resize(std::min<size_t>(50, candidates.size()));

    std::printf("\n--- %s (scatter series, 50 sampled trips) ---\n",
                run.city.c_str());
    for (const auto& name : methods) {
      const auto& pred = run.Method(name).predictions;
      std::printf("%s:", name.c_str());
      for (size_t idx : candidates) {
        std::printf(" (%.0f,%.0f)", run.truth[idx], pred[idx]);
      }
      std::printf("\n");
    }
    // Closeness to the y=x line: mean |estimate - actual| over the sample.
    util::Table table({"method", "mean |est-actual| (s)", "corr(est, actual)"});
    for (const auto& name : methods) {
      const auto& pred = run.Method(name).predictions;
      std::vector<double> sample_truth, sample_pred, abs_err;
      for (size_t idx : candidates) {
        sample_truth.push_back(run.truth[idx]);
        sample_pred.push_back(pred[idx]);
        abs_err.push_back(std::abs(pred[idx] - run.truth[idx]));
      }
      table.AddRow({name, util::Fmt(util::Mean(abs_err), 1),
                    util::Fmt(util::Pearson(sample_truth, sample_pred), 3)});
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape check: DeepOD's points lie closest to the y = x line\n"
      "(lowest mean deviation, highest correlation); LR's estimates are\n"
      "nearly flat in actual time; errors grow with trip duration for all\n"
      "methods but least for DeepOD.\n");
  return 0;
}
