// Micro-benchmarks (google-benchmark) of the nn kernels that dominate
// DeepOD's runtime: the LSTM step chain, the time-interval ResNet block,
// the traffic CNN, and the embedding gather + MLP path.
#include <benchmark/benchmark.h>

#include "nn/conv.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace {

using namespace deepod;

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn({n, n}, rng, 1.0);
  nn::Tensor b = nn::Tensor::Randn({n, n}, rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64);

void BM_LstmForward(benchmark::State& state) {
  const size_t seq_len = static_cast<size_t>(state.range(0));
  util::Rng rng(2);
  nn::Lstm lstm(24, 16, rng);
  std::vector<nn::Tensor> inputs;
  for (size_t i = 0; i < seq_len; ++i) {
    inputs.push_back(nn::Tensor::Randn({24}, rng, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Forward(inputs));
  }
}
BENCHMARK(BM_LstmForward)->Arg(10)->Arg(40);

void BM_LstmForwardBackward(benchmark::State& state) {
  util::Rng rng(3);
  nn::Lstm lstm(24, 16, rng);
  std::vector<nn::Tensor> inputs;
  for (size_t i = 0; i < 20; ++i) {
    inputs.push_back(nn::Tensor::Randn({24}, rng, 1.0));
  }
  for (auto _ : state) {
    nn::Tensor loss = nn::Sum(nn::Square(lstm.Forward(inputs)));
    loss.Backward();
    for (auto& p : lstm.Parameters()) p.ZeroGrad();
  }
}
BENCHMARK(BM_LstmForwardBackward);

void BM_ResNetTimeBlock(benchmark::State& state) {
  const size_t delta_d = static_cast<size_t>(state.range(0));
  util::Rng rng(4);
  nn::ResNetTimeBlock block(rng);
  nn::Tensor in = nn::Tensor::Randn({delta_d, 8}, rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.Forward(in));
  }
}
BENCHMARK(BM_ResNetTimeBlock)->Arg(1)->Arg(4);

void BM_TrafficCnn(benchmark::State& state) {
  util::Rng rng(5);
  nn::TrafficCnn cnn(16, rng);
  nn::Tensor in = nn::Tensor::Randn({1, 8, 8}, rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cnn.Forward(in));
  }
}
BENCHMARK(BM_TrafficCnn);

void BM_EmbeddingGatherMlp(benchmark::State& state) {
  util::Rng rng(6);
  nn::Embedding emb(2016, 8, rng);
  nn::Mlp2 mlp(16, 16, 8, rng);
  for (auto _ : state) {
    nn::Tensor x = nn::ConcatVec({emb.Forward(100), emb.Forward(101)});
    benchmark::DoNotOptimize(mlp.Forward(x));
  }
}
BENCHMARK(BM_EmbeddingGatherMlp);

void BM_AdamStep(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<nn::Tensor> params;
  for (int i = 0; i < 10; ++i) {
    nn::Tensor p = nn::Tensor::Randn({64, 64}, rng, 1.0);
    p.set_requires_grad(true);
    for (double& g : p.mutable_grad()) g = rng.Normal();
    params.push_back(p);
  }
  nn::Adam adam(params, 0.01);
  for (auto _ : state) {
    adam.Step();
  }
}
BENCHMARK(BM_AdamStep);

}  // namespace

BENCHMARK_MAIN();
