// Micro-benchmarks (google-benchmark) of the nn kernels that dominate
// DeepOD's runtime: the LSTM step chain, the time-interval ResNet block,
// the traffic CNN, and the embedding gather + MLP path. Writes every
// measurement to BENCH_nn_micro.json (name, wall seconds, threads,
// samples/sec) for tooling.
#include <benchmark/benchmark.h>

#include <vector>

#include "nn/conv.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/quant.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace {

using namespace deepod;

// The kernel tier is passed as the last benchmark argument so each op is
// measured in the legacy (pre-optimisation), blocked (default), vector
// (parallel-trainer) and simd (AVX2 serving) tiers. Mode 3 silently
// measures the kVector fallback on hosts without AVX2 — compare tiers on
// an AVX2 host (see SimdBackendName in nn/simd.h).
nn::KernelMode ModeArg(const benchmark::State& state, int index) {
  switch (state.range(index)) {
    case 1:
      return nn::KernelMode::kBlocked;
    case 2:
      return nn::KernelMode::kVector;
    case 3:
      return nn::KernelMode::kSimd;
    default:
      return nn::KernelMode::kLegacy;
  }
}

void BM_MatMul(benchmark::State& state) {
  nn::KernelModeScope mode(ModeArg(state, 1));
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn({n, n}, rng, 1.0);
  nn::Tensor b = nn::Tensor::Randn({n, n}, rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
}
BENCHMARK(BM_MatMul)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 3})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 3});

void BM_AffineRows(benchmark::State& state) {
  nn::KernelModeScope mode(ModeArg(state, 1));
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(8);
  nn::Tensor x = nn::Tensor::Randn({n, 64}, rng, 1.0);
  nn::Tensor w = nn::Tensor::Randn({64, 64}, rng, 1.0);
  nn::Tensor b = nn::Tensor::Randn({64}, rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::AffineRows(x, w, b));
  }
}
// The serving batch shape (PredictBatch's MLP): per-row GEMV over a packed
// 64x64 weight in kSimd.
BENCHMARK(BM_AffineRows)
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 3});

void BM_LstmForward(benchmark::State& state) {
  nn::KernelModeScope mode(ModeArg(state, 1));
  const size_t seq_len = static_cast<size_t>(state.range(0));
  util::Rng rng(2);
  nn::Lstm lstm(24, 16, rng);
  std::vector<nn::Tensor> inputs;
  for (size_t i = 0; i < seq_len; ++i) {
    inputs.push_back(nn::Tensor::Randn({24}, rng, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Forward(inputs));
  }
}
// Modes 2 and 3 run the fused single-node cell (DotUnrolled vs packed
// AVX2 GEMV); mode 1 is the composed-graph baseline.
BENCHMARK(BM_LstmForward)
    ->Args({10, 1})
    ->Args({10, 2})
    ->Args({10, 3})
    ->Args({40, 1})
    ->Args({40, 2})
    ->Args({40, 3});

void BM_LstmForwardBackward(benchmark::State& state) {
  nn::KernelModeScope mode(ModeArg(state, 0));
  util::Rng rng(3);
  nn::Lstm lstm(24, 16, rng);
  std::vector<nn::Tensor> inputs;
  for (size_t i = 0; i < 20; ++i) {
    inputs.push_back(nn::Tensor::Randn({24}, rng, 1.0));
  }
  for (auto _ : state) {
    nn::Tensor loss = nn::Sum(nn::Square(lstm.Forward(inputs)));
    loss.Backward();
    for (auto& p : lstm.Parameters()) p.ZeroGrad();
  }
}
// Modes 2 and 3 exercise the fused single-node LSTM cell (mode 3 packs
// weights once per optimizer step, so this also measures repack overhead).
BENCHMARK(BM_LstmForwardBackward)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_ResNetTimeBlock(benchmark::State& state) {
  const size_t delta_d = static_cast<size_t>(state.range(0));
  util::Rng rng(4);
  nn::ResNetTimeBlock block(rng);
  nn::Tensor in = nn::Tensor::Randn({delta_d, 8}, rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.Forward(in));
  }
}
BENCHMARK(BM_ResNetTimeBlock)->Arg(1)->Arg(4);

void BM_TrafficCnn(benchmark::State& state) {
  util::Rng rng(5);
  nn::TrafficCnn cnn(16, rng);
  nn::Tensor in = nn::Tensor::Randn({1, 8, 8}, rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cnn.Forward(in));
  }
}
BENCHMARK(BM_TrafficCnn);

void BM_EmbeddingGatherMlp(benchmark::State& state) {
  util::Rng rng(6);
  nn::Embedding emb(2016, 8, rng);
  nn::Mlp2 mlp(16, 16, 8, rng);
  for (auto _ : state) {
    nn::Tensor x = nn::ConcatVec({emb.Forward(100), emb.Forward(101)});
    benchmark::DoNotOptimize(mlp.Forward(x));
  }
}
BENCHMARK(BM_EmbeddingGatherMlp);

// Cost of snapping a 64x64 weight matrix to a quantised tier (1 = fp16
// round-trip, 2 = per-row absmax int8) — the per-tensor work
// io::LoadModelArtifact does once per load when a quant mode is requested.
void BM_QuantizeWeights(benchmark::State& state) {
  const nn::QuantMode mode = state.range(0) == 2 ? nn::QuantMode::kInt8
                                                 : nn::QuantMode::kFp16;
  util::Rng rng(9);
  nn::Tensor w = nn::Tensor::Randn({64, 64}, rng, 1.0);
  std::vector<double> scratch = w.data();
  for (auto _ : state) {
    scratch = w.data();
    nn::FakeQuantizeValues(scratch.data(), 64, 64, mode);
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_QuantizeWeights)->Arg(1)->Arg(2);

void BM_AdamStep(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<nn::Tensor> params;
  for (int i = 0; i < 10; ++i) {
    nn::Tensor p = nn::Tensor::Randn({64, 64}, rng, 1.0);
    p.set_requires_grad(true);
    for (double& g : p.mutable_grad()) g = rng.Normal();
    params.push_back(p);
  }
  nn::Adam adam(params, 0.01);
  for (auto _ : state) {
    adam.Step();
  }
}
BENCHMARK(BM_AdamStep);

// Console reporter that also collects per-benchmark wall time into the
// shared obs record schema (the same one bench/common.h and the obs
// registry exports use, so one validator/compare tool covers every
// BENCH_*.json). Piggybacks on the display reporter because
// google-benchmark only accepts a separate file reporter together with
// --benchmark_out.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double secs_per_iter =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : run.real_accumulated_time;
      obs::Record rec;
      rec.name = run.benchmark_name();
      rec.wall_seconds = secs_per_iter;
      rec.threads = static_cast<size_t>(run.threads);
      if (secs_per_iter > 0.0) rec.samples_per_sec = 1.0 / secs_per_iter;
      records_.push_back(std::move(rec));
    }
  }

  void WriteJson(const std::string& path) const {
    obs::WriteRecordsJson(path, records_);
  }

 private:
  std::vector<obs::Record> records_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCollector collector;
  benchmark::RunSpecifiedBenchmarks(&collector);
  collector.WriteJson("BENCH_nn_micro.json");
  benchmark::Shutdown();
  return 0;
}
