// Million-trip data plane bench: trip-synthesis throughput across thread
// counts, columnar trip-store write/ingest rates (mmap vs. CSV), and the
// out-of-core training overhead of io::ShardedTripSource against the
// in-memory feed. Records merge into BENCH_table5.json under the datagen/
// prefix so the existing regression gate covers the data plane.
//
// Scale knobs (record names embed the trip count, so runs at different
// scales never falsely compare against each other):
//   DEEPOD_BENCH_DATAGEN_TRIPS   full-scale corpus size   (default 1000000)
//   DEEPOD_BENCH_DATAGEN_SWEEP   trips per thread-sweep point (default /10)
//   DEEPOD_BENCH_DATAGEN_SHARDS  trip-store shard count   (default 8)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "core/trip_feed.h"
#include "io/sharded_trip_source.h"
#include "io/trip_io.h"
#include "io/trip_store.h"
#include "sim/dataset.h"
#include "sim/trip_gen.h"
#include "sim/trip_simulator.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace deepod;

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const unsigned long long parsed = std::strtoull(v, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

// The bench city: the Xi'an preset grid, trips spread over a fixed number
// of days so the traffic/weather environment stays the same at every scale.
sim::DatasetConfig CityConfig(size_t trips) {
  sim::DatasetConfig config;
  config.city = road::XianSimConfig();
  config.num_days = 10;
  config.trips_per_day = std::max<size_t>(1, trips / config.num_days);
  config.seed = 90210;
  return config;
}

std::string Trips(size_t n) { return "/trips=" + std::to_string(n); }

// One epoch of DeepOD training over `feed`; returns wall seconds.
double TimeEpoch(const sim::Dataset& dataset, core::TripFeed* feed) {
  core::DeepOdConfig config = bench::BenchModelConfig();
  config.epochs = 1;
  config.num_threads = 1;  // serial: isolates the feed's decode overhead
  core::DeepOdModel model(config, dataset);
  core::DeepOdTrainer trainer(model, dataset, feed);
  util::Stopwatch sw;
  trainer.TrainPrefix(1);
  return sw.ElapsedSeconds();
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Data plane — parallel synthesis, trip-store ingest, out-of-core train");
  const size_t trips = EnvSize("DEEPOD_BENCH_DATAGEN_TRIPS", 1000000);
  const size_t sweep_trips = EnvSize("DEEPOD_BENCH_DATAGEN_SWEEP",
                                     std::max<size_t>(1000, trips / 10));
  const size_t shards = EnvSize("DEEPOD_BENCH_DATAGEN_SHARDS", 8);
  const size_t auto_threads = util::ThreadPool::ResolveThreadCount(0);
  const std::string scratch = "bench_datagen_scratch";
  std::filesystem::create_directories(scratch);
  std::vector<bench::BenchJsonRecord> records;

  // --- Generate-throughput thread sweep -----------------------------------
  // Per-trip RNG streams make the generated set identical at every thread
  // count, so the sweep measures pure synthesis scaling.
  {
    const sim::DatasetConfig config = CityConfig(sweep_trips);
    sim::Dataset env;
    sim::InitDatasetEnvironment(config, &env);
    const sim::TripSimulator simulator(env.network, *env.traffic, *env.weather);
    const size_t n = config.trips_per_day * config.num_days;
    for (size_t threads : {1, 2, 4, 8}) {
      sim::TripGenOptions options;
      options.num_threads = threads;
      util::Stopwatch sw;
      const auto generated = sim::GenerateTrips(simulator, config, options);
      const double secs = sw.ElapsedSeconds();
      const double sps = static_cast<double>(generated.size()) / secs;
      std::printf("generate %8zu trips, %zu thread(s): %6.2f s  (%.0f trips/s)\n",
                  generated.size(), threads, secs, sps);
      records.push_back({"datagen/generate/threads=" + std::to_string(threads) +
                             Trips(n),
                         secs, threads, sps});
    }
  }

  // --- Full-scale generate + store write + ingest --------------------------
  const sim::DatasetConfig config = CityConfig(trips);
  const size_t n = config.trips_per_day * config.num_days;
  std::vector<traj::TripRecord> corpus;
  {
    sim::Dataset env;
    sim::InitDatasetEnvironment(config, &env);
    const sim::TripSimulator simulator(env.network, *env.traffic, *env.weather);
    sim::TripGenOptions options;
    options.num_threads = auto_threads;
    util::Stopwatch sw;
    corpus = sim::GenerateTrips(simulator, config, options);
    const double secs = sw.ElapsedSeconds();
    const double sps = static_cast<double>(corpus.size()) / secs;
    std::printf("generate %8zu trips, full scale:   %6.2f s  (%.0f trips/s)\n",
                corpus.size(), secs, sps);
    records.push_back(
        {"datagen/generate/full" + Trips(n), secs, auto_threads, sps});

    double write_secs = 0.0;
    {
      util::Stopwatch w;
      io::WriteTripShards(scratch, "bench", corpus, shards);
      write_secs = w.ElapsedSeconds();
    }
    std::printf("store write (%zu shards):            %6.2f s  (%.0f trips/s)\n",
                shards, write_secs, static_cast<double>(n) / write_secs);
    records.push_back({"datagen/store_write" + Trips(n), write_secs, 1,
                       static_cast<double>(n) / write_secs});
  }

  // Ingest: mmap'd columnar shards vs. the CSV path, both ending in the
  // same in-memory std::vector<TripRecord>.
  double mmap_secs = 0.0;
  {
    util::Stopwatch sw;
    std::vector<traj::TripRecord> loaded;
    loaded.reserve(n);
    for (size_t k = 0; k < shards; ++k) {
      const auto reader = io::TripStoreReader::OpenOrThrow(
          scratch + "/bench-" + std::to_string(k) + ".trips");
      auto part = reader.ReadAll();
      loaded.insert(loaded.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    mmap_secs = sw.ElapsedSeconds();
    if (loaded.size() != corpus.size()) {
      std::fprintf(stderr, "ingest mismatch: %zu != %zu\n", loaded.size(),
                   corpus.size());
      return 1;
    }
  }
  records.push_back({"datagen/ingest/mmap" + Trips(n), mmap_secs, 1,
                     static_cast<double>(n) / mmap_secs});

  double csv_secs = 0.0;
  {
    // Write the CSV outside the timed region: the comparison is ingest.
    sim::Dataset env;
    sim::InitDatasetEnvironment(config, &env);
    const std::string csv_path = scratch + "/bench.csv";
    io::WriteTripsCsv(corpus, csv_path);
    util::Stopwatch sw;
    const auto loaded = io::ReadTripsCsv(env.network, csv_path);
    csv_secs = sw.ElapsedSeconds();
    if (loaded.size() != corpus.size()) {
      std::fprintf(stderr, "csv ingest mismatch: %zu != %zu\n", loaded.size(),
                   corpus.size());
      return 1;
    }
  }
  records.push_back({"datagen/ingest/csv" + Trips(n), csv_secs, 1,
                     static_cast<double>(n) / csv_secs});
  const double ingest_speedup = csv_secs / mmap_secs;
  records.push_back({"datagen/ingest/mmap_vs_csv_speedup", 0.0, 1, 0.0,
                     ingest_speedup});
  std::printf(
      "ingest %zu trips: mmap %0.2f s, csv %0.2f s  (%.1fx)\n", n, mmap_secs,
      csv_secs, ingest_speedup);
  corpus.clear();
  corpus.shrink_to_fit();

  // --- Out-of-core vs. in-memory 1-epoch training --------------------------
  // Smoke-sized city: the point is the relative feed overhead, not absolute
  // training throughput (bench_table5_efficiency owns that).
  {
    sim::DatasetConfig train_config = CityConfig(3000);
    train_config.num_days = 15;
    train_config.trips_per_day = 200;
    const sim::Dataset dataset = sim::BuildDatasetParallel(train_config);
    const auto shard_paths =
        io::WriteTripShards(scratch, "train", dataset.train, 4);
    std::vector<size_t> shard_sizes;
    for (const auto& path : shard_paths) {
      shard_sizes.push_back(io::TripStoreReader::OpenOrThrow(path).size());
    }

    core::InMemoryTripFeed in_memory(dataset.train, shard_sizes);
    const double mem_secs = TimeEpoch(dataset, &in_memory);
    io::ShardedTripSource sharded(shard_paths);
    const double ooc_secs = TimeEpoch(dataset, &sharded);
    const double overhead = ooc_secs / mem_secs;
    const size_t m = dataset.train.size();
    std::printf(
        "train 1 epoch (%zu trips): in-memory %0.2f s, out-of-core %0.2f s\n"
        "  overhead %.3fx  (lookahead window hits: %zu)\n",
        m, mem_secs, ooc_secs, overhead, sharded.prefetch_hits());
    records.push_back({"datagen/train_epoch/in_memory" + Trips(m), mem_secs, 1,
                       static_cast<double>(m) / mem_secs});
    records.push_back({"datagen/train_epoch/out_of_core" + Trips(m), ooc_secs,
                       1, static_cast<double>(m) / ooc_secs});
    records.push_back(
        {"datagen/train_epoch/ooc_vs_mem_speedup", 0.0, 1, 0.0, overhead});
  }

  std::filesystem::remove_all(scratch);
  bench::MergeBenchJson("BENCH_table5.json", {"datagen/"}, records);
  return 0;
}
