// Fig. 10 + Table 3: validation MAE vs training step for the three deep
// models (STNN, MURAT, DeepOD) on Chengdu and Xi'an, plus the convergence
// step/time summary.
#include <cstdio>

#include "baselines/murat.h"
#include "baselines/stnn.h"
#include "bench/common.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace deepod;

namespace {

struct Curve {
  std::vector<size_t> steps;
  std::vector<double> val_mae;
  double train_seconds = 0.0;

  // Convergence step: first step after which the validation MAE never
  // improves by more than 2% of its final value.
  size_t ConvergenceStep() const {
    if (val_mae.empty()) return 0;
    const double final_mae = val_mae.back();
    size_t conv = steps.back();
    for (size_t i = val_mae.size(); i-- > 0;) {
      if (val_mae[i] > final_mae * 1.02) break;
      conv = steps[i];
    }
    return conv;
  }
};

void PrintCurve(const std::string& city, const std::string& method,
                const Curve& curve) {
  std::printf("curve %s %s:", city.c_str(), method.c_str());
  // Thin the series for readability.
  const size_t stride = std::max<size_t>(1, curve.steps.size() / 12);
  for (size_t i = 0; i < curve.steps.size(); i += stride) {
    std::printf(" (%zu, %.1f)", curve.steps[i], curve.val_mae[i]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Fig. 10 + Table 3 — validation MAE vs training steps; convergence "
      "steps/time (mini profile, chengdu & xian)");
  util::Table table({"city", "method", "conv. steps", "train time (s)",
                     "final val MAE (s)"});
  for (bench::City city : {bench::City::kChengdu, bench::City::kXian}) {
    const sim::Dataset ds = sim::BuildDataset(bench::MiniConfig(city));
    const std::string name = bench::CityName(city);

    // STNN.
    {
      Curve curve;
      baselines::StnnEstimator::Options options;
      options.eval_every = 10;
      options.step_callback = [&curve](size_t step, double mae) {
        curve.steps.push_back(step);
        curve.val_mae.push_back(mae);
      };
      util::Stopwatch sw;
      baselines::StnnEstimator stnn(options);
      stnn.Train(ds);
      curve.train_seconds = sw.ElapsedSeconds();
      PrintCurve(name, "STNN", curve);
      table.AddRow({name, "STNN", std::to_string(curve.ConvergenceStep()),
                    util::Fmt(curve.train_seconds, 2),
                    util::Fmt(curve.val_mae.back(), 1)});
    }
    // MURAT.
    {
      Curve curve;
      baselines::MuratEstimator::Options options;
      options.eval_every = 10;
      options.step_callback = [&curve](size_t step, double mae) {
        curve.steps.push_back(step);
        curve.val_mae.push_back(mae);
      };
      util::Stopwatch sw;
      baselines::MuratEstimator murat(options);
      murat.Train(ds);
      curve.train_seconds = sw.ElapsedSeconds();
      PrintCurve(name, "MURAT", curve);
      table.AddRow({name, "MURAT", std::to_string(curve.ConvergenceStep()),
                    util::Fmt(curve.train_seconds, 2),
                    util::Fmt(curve.val_mae.back(), 1)});
    }
    // DeepOD.
    {
      Curve curve;
      core::DeepOdConfig config = bench::BenchModelConfig();
      config.epochs = 8;
      config.loss_weight_w = bench::BenchLossWeight(city);
      util::Stopwatch sw;
      core::DeepOdModel model(config, ds);
      core::DeepOdTrainer trainer(model, ds);
      trainer.Train(
          [&curve](size_t step, double mae) {
            curve.steps.push_back(step);
            curve.val_mae.push_back(mae);
          },
          10, 120);
      curve.train_seconds = sw.ElapsedSeconds();
      PrintCurve(name, "DeepOD", curve);
      table.AddRow({name, "DeepOD", std::to_string(curve.ConvergenceStep()),
                    util::Fmt(curve.train_seconds, 2),
                    util::Fmt(curve.val_mae.back(), 1)});
    }
    std::fprintf(stderr, "[bench] %s curves done\n", name.c_str());
  }
  table.Print();
  std::printf(
      "\nPaper shape check: DeepOD converges to the lowest validation MAE;\n"
      "STNN is the cheapest per step but plateaus highest; the smaller city\n"
      "(xian) converges in fewer steps than chengdu for every model.\n");
  return 0;
}
