#include "bench/common.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "baselines/gbm.h"
#include "baselines/linear_regression.h"
#include "baselines/murat.h"
#include "baselines/stnn.h"
#include "baselines/temp.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace deepod::bench {
namespace {

constexpr int kCacheVersion = 3;

std::string CachePath(City city) {
  return "deepod_bench_cache." + CityName(city) + ".txt";
}

bool LoadCache(City city, StandardRun* run) {
  std::ifstream in(CachePath(city));
  if (!in) return false;
  int version = 0;
  in >> version;
  if (version != kCacheVersion) return false;
  size_t num_truth = 0, num_methods = 0;
  in >> num_truth >> num_methods;
  run->city = CityName(city);
  run->truth.resize(num_truth);
  for (double& v : run->truth) in >> v;
  run->methods.resize(num_methods);
  for (auto& m : run->methods) {
    in >> m.name >> m.train_seconds >> m.estimate_seconds_per_k >>
        m.model_bytes >> m.convergence_steps;
    m.predictions.resize(num_truth);
    for (double& v : m.predictions) in >> v;
  }
  return static_cast<bool>(in);
}

void SaveCache(City city, const StandardRun& run) {
  std::ofstream out(CachePath(city));
  out.precision(12);
  out << kCacheVersion << "\n";
  out << run.truth.size() << " " << run.methods.size() << "\n";
  for (double v : run.truth) out << v << " ";
  out << "\n";
  for (const auto& m : run.methods) {
    out << m.name << " " << m.train_seconds << " " << m.estimate_seconds_per_k
        << " " << m.model_bytes << " " << m.convergence_steps << "\n";
    for (double v : m.predictions) out << v << " ";
    out << "\n";
  }
}

MethodResult RunBaseline(baselines::OdEstimator& estimator,
                         const sim::Dataset& dataset) {
  MethodResult result;
  result.name = estimator.name();
  util::Stopwatch sw;
  estimator.Train(dataset);
  result.train_seconds = sw.ElapsedSeconds();
  sw.Reset();
  result.predictions = estimator.PredictAll(dataset.test);
  result.estimate_seconds_per_k = sw.ElapsedSeconds() * 1000.0 /
                                  static_cast<double>(dataset.test.size());
  result.model_bytes = estimator.ModelSizeBytes();
  return result;
}

StandardRun ComputeStandardRun(City city) {
  const sim::Dataset dataset = sim::BuildDataset(StandardConfig(city));
  StandardRun run;
  run.city = CityName(city);
  for (const auto& trip : dataset.test) run.truth.push_back(trip.travel_time);

  std::fprintf(stderr, "[bench] standard run for %s: %zu train / %zu test\n",
               run.city.c_str(), dataset.train.size(), dataset.test.size());

  {
    baselines::TempEstimator temp;
    run.methods.push_back(RunBaseline(temp, dataset));
  }
  {
    baselines::LinearRegressionEstimator lr;
    run.methods.push_back(RunBaseline(lr, dataset));
  }
  {
    baselines::GbmEstimator gbm;
    run.methods.push_back(RunBaseline(gbm, dataset));
  }
  {
    baselines::StnnEstimator stnn;
    run.methods.push_back(RunBaseline(stnn, dataset));
  }
  {
    baselines::MuratEstimator murat;
    run.methods.push_back(RunBaseline(murat, dataset));
  }

  // DeepOD ablation variants (§6.4.2) at a reduced epoch budget, then the
  // full model.
  const core::DeepOdConfig base = BenchModelConfig();
  struct Variant {
    const char* name;
    core::Ablation ablation;
  };
  for (const Variant v : {Variant{"N-st", core::Ablation::kNoSt},
                          Variant{"N-sp", core::Ablation::kNoSp},
                          Variant{"N-tp", core::Ablation::kNoTp},
                          Variant{"N-other", core::Ablation::kNoOther}}) {
    core::DeepOdConfig config = base;
    config.ablation = v.ablation;
    config.loss_weight_w = BenchLossWeight(city);
    config.epochs = std::max(4, base.epochs * 2 / 3);
    run.methods.push_back(RunDeepOdVariant(dataset, config, v.name));
    std::fprintf(stderr, "[bench]   %s done\n", v.name);
  }
  {
    core::DeepOdConfig config = base;
    config.loss_weight_w = BenchLossWeight(city);
    run.methods.push_back(RunDeepOdVariant(dataset, config, "DeepOD"));
    std::fprintf(stderr, "[bench]   DeepOD done\n");
  }
  return run;
}

}  // namespace

std::string CityName(City city) {
  switch (city) {
    case City::kChengdu:
      return "chengdu-sim";
    case City::kXian:
      return "xian-sim";
    case City::kBeijing:
      return "beijing-sim";
  }
  return "unknown";
}

std::vector<City> AllCities() {
  return {City::kChengdu, City::kXian, City::kBeijing};
}

sim::DatasetConfig StandardConfig(City city) {
  sim::DatasetConfig config;
  switch (city) {
    case City::kChengdu:
      config.city = road::ChengduSimConfig();
      config.city.rows = 11;
      config.city.cols = 11;
      config.trips_per_day = 240;
      config.seed = 1001;
      break;
    case City::kXian:
      config.city = road::XianSimConfig();
      config.city.rows = 10;
      config.city.cols = 10;
      config.trips_per_day = 200;
      config.seed = 2002;
      break;
    case City::kBeijing:
      config.city = road::BeijingSimConfig();
      config.city.rows = 13;
      config.city.cols = 13;
      config.trips_per_day = 280;
      config.seed = 3003;
      break;
  }
  config.num_days = 40;
  return config;
}

sim::DatasetConfig MiniConfig(City city) {
  sim::DatasetConfig config = StandardConfig(city);
  config.city.rows = 8;
  config.city.cols = 8;
  config.city.river_rows = {4};
  config.city.bridge_period = 4;
  config.trips_per_day = 100;
  config.num_days = 25;
  return config;
}

core::DeepOdConfig BenchModelConfig() {
  core::DeepOdConfig config = core::DeepOdConfig().Scaled(8);
  config.epochs = 12;
  config.batch_size = 16;
  return config;
}

double BenchLossWeight(City city) {
  // Fine-tuned per dataset, as the paper does in §6.3.
  switch (city) {
    case City::kChengdu:
      return 0.3;
    case City::kXian:
      return 0.3;
    case City::kBeijing:
      return 0.3;
  }
  return 0.3;
}

const MethodResult& StandardRun::Method(const std::string& name) const {
  for (const auto& m : methods) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("StandardRun: no method " + name);
}

MethodResult RunDeepOdVariant(const sim::Dataset& dataset,
                              const core::DeepOdConfig& config,
                              const std::string& name) {
  MethodResult result;
  result.name = name;
  util::Stopwatch sw;
  core::DeepOdModel model(config, dataset);
  core::DeepOdTrainer trainer(model, dataset);
  trainer.Train(nullptr, 1u << 30, 150);
  result.train_seconds = sw.ElapsedSeconds();
  result.convergence_steps = trainer.steps_taken();
  sw.Reset();
  result.predictions = trainer.PredictAll(dataset.test);
  result.estimate_seconds_per_k = sw.ElapsedSeconds() * 1000.0 /
                                  static_cast<double>(dataset.test.size());
  result.model_bytes = nn::SerializedSize(model.Parameters());
  return result;
}

const StandardRun& GetStandardRun(City city) {
  // One slot per city, each initialised exactly once; cities computed from
  // different threads (PrewarmStandardRuns) proceed concurrently.
  struct Entry {
    std::once_flag once;
    StandardRun run;
  };
  static std::array<Entry, 3> entries;
  Entry& entry = entries.at(static_cast<size_t>(city));
  std::call_once(entry.once, [&] {
    if (!LoadCache(city, &entry.run)) {
      entry.run = ComputeStandardRun(city);
      SaveCache(city, entry.run);
    } else {
      std::fprintf(stderr, "[bench] loaded cached standard run for %s\n",
                   CityName(city).c_str());
    }
  });
  return entry.run;
}

void PrewarmStandardRuns() {
  const std::vector<City> cities = AllCities();
  util::ThreadPool pool(
      std::min(cities.size(), util::ThreadPool::ResolveThreadCount(0)));
  pool.ParallelFor(cities.size(),
                   [&](size_t i) { GetStandardRun(cities[i]); });
}

void WriteBenchJson(const std::string& path,
                    const std::vector<BenchJsonRecord>& records) {
  // All BENCH_*.json emitters funnel through the obs record schema so the
  // bench files and Registry::ExportJson stay validatable/compare-able by
  // the same tools (tools/validate_bench_json.py, tools/bench_compare.py).
  std::vector<obs::Record> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    obs::Record rec;
    rec.name = r.name;
    rec.wall_seconds = r.wall_seconds;
    rec.threads = r.threads;
    // <= 0 means "not measured": the field is omitted rather than written
    // as a misleading 0.
    if (r.samples_per_sec > 0.0) rec.samples_per_sec = r.samples_per_sec;
    if (!std::isnan(r.value)) rec.value = r.value;
    out.push_back(std::move(rec));
  }
  obs::WriteRecordsJson(path, out);
  std::fprintf(stderr, "[bench] wrote %s (%zu records)\n", path.c_str(),
               records.size());
}

namespace {

// Pulls `"key": <number>` out of one record line; `fallback` when absent.
double JsonNumberField(const std::string& line, const std::string& key,
                       double fallback) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return fallback;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

}  // namespace

std::vector<BenchJsonRecord> ReadBenchJsonRecords(const std::string& path) {
  // The emitters write one record object per line (obs::RenderRecordsJson),
  // and record names in this repo never contain quotes or escapes, so a
  // line-oriented field scan round-trips everything we emit without pulling
  // in a JSON parser.
  std::vector<BenchJsonRecord> records;
  std::ifstream in(path);
  if (!in) return records;
  std::string line;
  while (std::getline(in, line)) {
    const size_t name_at = line.find("\"name\": \"");
    if (name_at == std::string::npos) continue;
    const size_t begin = name_at + 9;
    const size_t end = line.find('"', begin);
    if (end == std::string::npos) continue;
    BenchJsonRecord r;
    r.name = line.substr(begin, end - begin);
    r.wall_seconds = JsonNumberField(line, "wall_seconds", 0.0);
    r.threads = static_cast<size_t>(
        std::max(1.0, JsonNumberField(line, "threads", 1.0)));
    r.samples_per_sec = JsonNumberField(line, "samples_per_sec", 0.0);
    r.value = JsonNumberField(line, "value",
                              std::numeric_limits<double>::quiet_NaN());
    records.push_back(std::move(r));
  }
  return records;
}

void MergeBenchJson(const std::string& path,
                    const std::vector<std::string>& replace_prefixes,
                    const std::vector<BenchJsonRecord>& records) {
  std::vector<BenchJsonRecord> merged = ReadBenchJsonRecords(path);
  std::erase_if(merged, [&](const BenchJsonRecord& r) {
    for (const std::string& prefix : replace_prefixes) {
      if (r.name.compare(0, prefix.size(), prefix) == 0) return true;
    }
    return false;
  });
  const size_t kept = merged.size();
  merged.insert(merged.end(), records.begin(), records.end());
  WriteBenchJson(path, merged);
  if (kept > 0) {
    std::fprintf(stderr, "[bench] merged into %s (%zu records kept)\n",
                 path.c_str(), kept);
  }
}

void PrintBanner(const std::string& experiment) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf(
      "Substrate: synthetic traffic simulator (see DESIGN.md); absolute\n"
      "numbers differ from the paper's real-taxi testbed, the comparison\n"
      "shape (ordering / trends) is the reproduction target.\n");
  std::printf("================================================================\n");
}

}  // namespace deepod::bench
