// Table 6: scalability — test MAPE of every method when trained on 20%,
// 40%, 60%, 80% and 100% of the Beijing training data. Every (method,
// fraction) cell also lands in BENCH_table6.json — wall_seconds is the
// method's training time, value its test MAPE — so tooling can track both
// without scraping the table.
#include <cstdio>

#include "analysis/metrics.h"
#include "baselines/gbm.h"
#include "baselines/linear_regression.h"
#include "baselines/murat.h"
#include "baselines/stnn.h"
#include "baselines/temp.h"
#include "bench/common.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace deepod;

namespace {

// Trains `estimator` on ds, scores it on the fixed test split, and appends
// both the table cell and the JSON record.
template <typename Estimator>
void RunMethod(Estimator& estimator, const sim::Dataset& ds,
               const std::vector<double>& truth, const std::string& name,
               double fraction, std::vector<std::string>* row,
               std::vector<bench::BenchJsonRecord>* records) {
  util::Stopwatch sw;
  estimator.Train(ds);
  const double train_secs = sw.ElapsedSeconds();
  const double mape = analysis::Mape(truth, estimator.PredictAll(ds.test));
  row->push_back(util::Fmt(mape, 2));
  bench::BenchJsonRecord record{
      "table6/" + name + "/frac=" + util::Fmt(fraction * 100.0, 0), train_secs,
      1};
  record.value = mape;
  records->push_back(std::move(record));
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Table 6 — scalability: test MAPE vs training fraction (beijing-sim)");
  util::Table table({"scale", "TEMP", "LR", "GBM", "STNN", "MURAT", "DeepOD"});
  std::vector<bench::BenchJsonRecord> records;
  const size_t auto_threads = util::ThreadPool::ResolveThreadCount(0);
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    // Keep the chronologically-first fraction of the training trips;
    // validation/test stay fixed, as in the paper's protocol.
    sim::Dataset ds =
        sim::BuildDataset(bench::StandardConfig(bench::City::kBeijing));
    const size_t keep =
        static_cast<size_t>(static_cast<double>(ds.train.size()) * fraction);
    ds.train.resize(std::max<size_t>(1, keep));

    std::vector<double> truth;
    for (const auto& t : ds.test) truth.push_back(t.travel_time);
    std::vector<std::string> row = {util::Fmt(fraction * 100.0, 0) + "%"};

    baselines::TempEstimator temp;
    RunMethod(temp, ds, truth, "TEMP", fraction, &row, &records);
    baselines::LinearRegressionEstimator lr;
    RunMethod(lr, ds, truth, "LR", fraction, &row, &records);
    baselines::GbmEstimator gbm;
    RunMethod(gbm, ds, truth, "GBM", fraction, &row, &records);
    baselines::StnnEstimator stnn;
    RunMethod(stnn, ds, truth, "STNN", fraction, &row, &records);
    baselines::MuratEstimator murat;
    RunMethod(murat, ds, truth, "MURAT", fraction, &row, &records);

    core::DeepOdConfig config = bench::BenchModelConfig();
    config.loss_weight_w = bench::BenchLossWeight(bench::City::kBeijing);
    const auto deepod = bench::RunDeepOdVariant(ds, config, "DeepOD");
    const double mape = analysis::Mape(truth, deepod.predictions);
    row.push_back(util::Fmt(mape, 2));
    bench::BenchJsonRecord record{
        "table6/DeepOD/frac=" + util::Fmt(fraction * 100.0, 0),
        deepod.train_seconds, auto_threads};
    record.value = mape;
    records.push_back(std::move(record));

    table.AddRow(row);
    std::fprintf(stderr, "[bench] fraction %.0f%% done\n", fraction * 100);
  }
  table.Print();
  std::printf(
      "\nPaper shape check: every method improves with more data; DeepOD is\n"
      "the most accurate at every fraction and degrades the least at 20%%.\n");
  bench::WriteBenchJson("BENCH_table6.json", records);
  return 0;
}
