// Table 6: scalability — test MAPE of every method when trained on 20%,
// 40%, 60%, 80% and 100% of the Beijing training data.
#include <cstdio>

#include "analysis/metrics.h"
#include "baselines/gbm.h"
#include "baselines/linear_regression.h"
#include "baselines/murat.h"
#include "baselines/stnn.h"
#include "baselines/temp.h"
#include "bench/common.h"
#include "util/table.h"

using namespace deepod;

int main() {
  bench::PrintBanner(
      "Table 6 — scalability: test MAPE vs training fraction (beijing-sim)");
  util::Table table({"scale", "TEMP", "LR", "GBM", "STNN", "MURAT", "DeepOD"});
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    // Keep the chronologically-first fraction of the training trips;
    // validation/test stay fixed, as in the paper's protocol.
    sim::Dataset ds =
        sim::BuildDataset(bench::StandardConfig(bench::City::kBeijing));
    const size_t keep =
        static_cast<size_t>(static_cast<double>(ds.train.size()) * fraction);
    ds.train.resize(std::max<size_t>(1, keep));

    std::vector<double> truth;
    for (const auto& t : ds.test) truth.push_back(t.travel_time);
    std::vector<std::string> row = {util::Fmt(fraction * 100.0, 0) + "%"};

    baselines::TempEstimator temp;
    temp.Train(ds);
    row.push_back(util::Fmt(analysis::Mape(truth, temp.PredictAll(ds.test)), 2));
    baselines::LinearRegressionEstimator lr;
    lr.Train(ds);
    row.push_back(util::Fmt(analysis::Mape(truth, lr.PredictAll(ds.test)), 2));
    baselines::GbmEstimator gbm;
    gbm.Train(ds);
    row.push_back(util::Fmt(analysis::Mape(truth, gbm.PredictAll(ds.test)), 2));
    baselines::StnnEstimator stnn;
    stnn.Train(ds);
    row.push_back(util::Fmt(analysis::Mape(truth, stnn.PredictAll(ds.test)), 2));
    baselines::MuratEstimator murat;
    murat.Train(ds);
    row.push_back(
        util::Fmt(analysis::Mape(truth, murat.PredictAll(ds.test)), 2));

    core::DeepOdConfig config = bench::BenchModelConfig();
    config.loss_weight_w = bench::BenchLossWeight(bench::City::kBeijing);
    const auto deepod = bench::RunDeepOdVariant(ds, config, "DeepOD");
    row.push_back(util::Fmt(analysis::Mape(truth, deepod.predictions), 2));

    table.AddRow(row);
    std::fprintf(stderr, "[bench] fraction %.0f%% done\n", fraction * 100);
  }
  table.Print();
  std::printf(
      "\nPaper shape check: every method improves with more data; DeepOD is\n"
      "the most accurate at every fraction and degrades the least at 20%%.\n");
  return 0;
}
