#ifndef DEEPOD_BENCH_COMMON_H_
#define DEEPOD_BENCH_COMMON_H_

#include <limits>
#include <string>
#include <vector>

#include "core/deepod_config.h"
#include "sim/dataset.h"

namespace deepod::bench {

// The benches reproduce the paper's tables/figures at laptop scale. Two
// dataset profiles are used:
//  - Standard: the flagship comparison scale (Table 4 family). One run per
//    city is computed once and cached on disk so the benches that reuse it
//    (Fig. 11-13, Table 5) do not retrain.
//  - Mini: smaller cities/corpora for the parameter sweeps (Fig. 8/9/14,
//    Table 7) where the paper varies one knob over many configurations.
enum class City { kChengdu, kXian, kBeijing };

std::string CityName(City city);
std::vector<City> AllCities();

// Dataset configs.
sim::DatasetConfig StandardConfig(City city);
sim::DatasetConfig MiniConfig(City city);

// The bench-profile DeepOD configuration (paper dims scaled by 8; see
// DESIGN.md "Scaled dimensions").
core::DeepOdConfig BenchModelConfig();
// Per-city tuned auxiliary-loss weight (§6.3 tunes w per dataset).
double BenchLossWeight(City city);

// --- Standard-run results cache -------------------------------------------

struct MethodResult {
  std::string name;
  std::vector<double> predictions;  // one per test trip
  double train_seconds = 0.0;
  double estimate_seconds_per_k = 0.0;  // latency per 1000 queries
  size_t model_bytes = 0;
  size_t convergence_steps = 0;  // optimisation steps taken (0 if n/a)
};

struct StandardRun {
  std::string city;
  std::vector<double> truth;  // test-set ground truth (seconds)
  std::vector<MethodResult> methods;

  const MethodResult& Method(const std::string& name) const;
};

// Computes (or loads from ./deepod_bench_cache.<city>.txt) the standard
// comparison: TEMP, LR, GBM, STNN, MURAT, the four N-* ablations and
// DeepOD, all trained on the standard dataset of the city. Thread-safe;
// concurrent calls for different cities compute concurrently.
const StandardRun& GetStandardRun(City city);

// Computes the standard runs for all cities, fanning the cities out over a
// thread pool (they are independent). Benches that consume several cities
// call this first so the expensive misses overlap.
void PrewarmStandardRuns();

// Trains one DeepOD variant on `dataset` and fills a MethodResult.
// `epochs_override` < 0 keeps the profile default.
MethodResult RunDeepOdVariant(const sim::Dataset& dataset,
                              const core::DeepOdConfig& config,
                              const std::string& name);

// Prints the standard bench banner (profile + substitution note).
void PrintBanner(const std::string& experiment);

// --- Machine-readable bench output ----------------------------------------

// One timed measurement for the BENCH_*.json files consumed by tooling.
// `samples_per_sec <= 0` means "not measured" and the field is omitted from
// the JSON rather than written as a misleading 0.
struct BenchJsonRecord {
  std::string name;
  double wall_seconds = 0.0;
  size_t threads = 1;
  double samples_per_sec = 0.0;
  // Dimensionless measurement (a MAPE, a ratio); NaN means "not measured"
  // and the field is omitted from the JSON.
  double value = std::numeric_limits<double>::quiet_NaN();
};

// Writes `records` to `path` as {"hardware_concurrency": N, "records": [...]}.
void WriteBenchJson(const std::string& path,
                    const std::vector<BenchJsonRecord>& records);

// Reads records back from a BENCH-json file previously written by
// WriteBenchJson / obs::WriteRecordsJson (the one-record-per-line shape
// those emitters produce). Optional fields other than samples_per_sec and
// value are dropped. Returns empty when the file does not exist.
std::vector<BenchJsonRecord> ReadBenchJsonRecords(const std::string& path);

// Read-modify-write merge so several bench binaries can share one
// BENCH_*.json: drops every existing record at `path` whose name starts
// with one of `replace_prefixes`, appends `records` after the survivors,
// and writes the result back. (bench_table5_efficiency owns the table5/*
// and deepod_train/* records of BENCH_table5.json; bench_datagen owns
// datagen/*.)
void MergeBenchJson(const std::string& path,
                    const std::vector<std::string>& replace_prefixes,
                    const std::vector<BenchJsonRecord>& records);

}  // namespace deepod::bench

#endif  // DEEPOD_BENCH_COMMON_H_
