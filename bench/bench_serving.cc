// Serving-path bench: drives DeepOdModel's graph-free query engine and the
// EtaService front-end with a synthetic query stream from the simulator and
// writes BENCH_serving.json:
//   - serving/single_query/{before,after}: per-query latency of the
//     training-mode forward (autograd graph built, the pre-inference-mode
//     Predict) vs. the graph-free Predict. `speedup` carries the ratio in
//     samples_per_sec.
//   - serving/batch_qps/batch=B[/threads=T]: PredictBatch throughput vs.
//     micro-batch size, single-threaded and fanned over the pool.
//   - serving/kernel/<tier>/qps: PredictBatch throughput per kernel tier
//     (blocked, vector, simd — simd falls back to the vector path on hosts
//     without AVX2, see nn/simd.h).
//   - serving/cache/capacity=C/{qps,hit_rate}: EtaService cache sweep over a
//     skewed stream; hit_rate records carry the hit fraction in
//     wall_seconds (it is a ratio, not a time).
//   - serving/microbatch/qps: TrySubmit through the bounded queue and the
//     dispatcher's micro-batching (bounded-wait retries on backpressure).
//   - serving/quant/<mode>/{qps,mae}: EtaService::FromArtifact with fp64,
//     fp16 and int8 weights on the kSimd tier; mae records carry the mean
//     absolute ETA error in seconds vs. the fp64 answers in wall_seconds
//     (it is an error, not a time — bench_compare skips *mae* records).
// Usage: bench_serving [num_queries]  (default 2000; CI smoke passes 200).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/deepod_model.h"
#include "io/model_artifact.h"
#include "nn/quant.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "obs/trace.h"
#include "serve/eta_service.h"
#include "sim/dataset.h"
#include "sim/snapshot_speed_field.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace deepod;

namespace {

// A synthetic serving stream: OD pairs drawn from the test split with
// departure times resampled into a 30-minute window around "now" — live
// queries ask about departures near the present, which is also what keeps
// the external-feature snapshots and time-slot keys warm. `hot_fraction` of
// the queries are drawn from a small hot set to model popular OD pairs.
std::vector<traj::OdInput> MakeQueryStream(const sim::Dataset& dataset,
                                           size_t n, double hot_fraction,
                                           size_t hot_set_size,
                                           util::Rng& rng) {
  const auto& trips = dataset.test.empty() ? dataset.train : dataset.test;
  std::vector<traj::OdInput> hot_set;
  for (size_t i = 0; i < hot_set_size; ++i) {
    hot_set.push_back(trips[rng.UniformInt(trips.size())].od);
  }
  std::vector<traj::OdInput> stream;
  stream.reserve(n);
  const double now = 10.0 * 86400.0 + 8.0 * 3600.0;  // day 10, 08:00
  for (size_t i = 0; i < n; ++i) {
    traj::OdInput od = rng.Bernoulli(hot_fraction)
                           ? hot_set[rng.UniformInt(hot_set.size())]
                           : trips[rng.UniformInt(trips.size())].od;
    od.departure_time = now + rng.Uniform(0.0, 1800.0);
    stream.push_back(od);
  }
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_queries =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 2000;
  bench::PrintBanner("Serving path — graph-free inference, batching, cache");

  const sim::Dataset dataset =
      sim::BuildDataset(bench::MiniConfig(bench::City::kXian));
  core::DeepOdConfig config = bench::BenchModelConfig();
  core::DeepOdModel model(config, dataset);
  model.SetTraining(false);

  util::Rng rng(20240806);
  const std::vector<traj::OdInput> stream =
      MakeQueryStream(dataset, num_queries, /*hot_fraction=*/0.8,
                      /*hot_set_size=*/64, rng);

  std::vector<bench::BenchJsonRecord> records;
  const size_t auto_threads = util::ThreadPool::ResolveThreadCount(0);

  // --- Single-query latency: training-mode forward vs. graph-free ----------
  // "Before" reproduces the pre-inference-mode Predict: EncodeOd +
  // EstimateFromCode outside any InferenceGuard builds the full autograd
  // graph per query. "After" is the shipped Predict (graph-free + ocode
  // memo). Values are bit-identical; only bookkeeping differs.
  double sink = 0.0;
  util::Stopwatch sw;
  for (const auto& od : stream) {
    sink += model.EstimateFromCode(model.EncodeOd(od)).item();
  }
  const double before_secs = sw.ElapsedSeconds();
  sw.Reset();
  for (const auto& od : stream) sink += model.Predict(od);
  const double after_secs = sw.ElapsedSeconds();
  const double n = static_cast<double>(stream.size());
  const double speedup = after_secs > 0.0 ? before_secs / after_secs : 0.0;
  std::printf(
      "Single query (%zu queries):\n"
      "  before (training-mode forward): %.3f ms/query\n"
      "  after  (graph-free Predict):    %.3f ms/query\n"
      "  speedup: %.2fx\n",
      stream.size(), 1000.0 * before_secs / n, 1000.0 * after_secs / n,
      speedup);
  records.push_back(
      {"serving/single_query/before", before_secs, 1, n / before_secs});
  records.push_back(
      {"serving/single_query/after", after_secs, 1, n / after_secs});
  records.push_back({"serving/single_query/speedup", 0.0, 1, speedup});

  // --- Batched QPS vs. batch size -------------------------------------------
  for (const size_t batch : {size_t{1}, size_t{8}, size_t{32}, size_t{128}}) {
    sw.Reset();
    for (size_t pos = 0; pos < stream.size(); pos += batch) {
      const size_t m = std::min(batch, stream.size() - pos);
      const auto etas = model.PredictBatch({&stream[pos], m});
      sink += etas[0];
    }
    const double secs = sw.ElapsedSeconds();
    std::printf("PredictBatch batch=%-4zu: %8.0f queries/s\n", batch,
                n / secs);
    records.push_back({"serving/batch_qps/batch=" + std::to_string(batch),
                       secs, 1, n / secs});
  }
  if (auto_threads > 1) {
    util::ThreadPool pool(auto_threads);
    for (const size_t batch : {size_t{128}, size_t{512}}) {
      sw.Reset();
      for (size_t pos = 0; pos < stream.size(); pos += batch) {
        const size_t m = std::min(batch, stream.size() - pos);
        const auto etas = model.PredictBatch({&stream[pos], m}, &pool);
        sink += etas[0];
      }
      const double secs = sw.ElapsedSeconds();
      std::printf("PredictBatch batch=%-4zu threads=%zu: %8.0f queries/s\n",
                  batch, auto_threads, n / secs);
      records.push_back({"serving/batch_qps/batch=" + std::to_string(batch) +
                             "/threads=" + std::to_string(auto_threads),
                         secs, auto_threads, n / secs});
    }
  }

  // --- Kernel-tier sweep -----------------------------------------------------
  // PredictBatch at the service's default micro-batch size under each
  // predict-side kernel tier. kSimd runs the packed AVX2 GEMV kernels when
  // the host supports them (backend printed below) and the kVector path
  // otherwise, so the record exists on every host.
  {
    struct Tier {
      const char* name;
      nn::KernelMode mode;
    };
    const Tier tiers[] = {{"blocked", nn::KernelMode::kBlocked},
                          {"vector", nn::KernelMode::kVector},
                          {"simd", nn::KernelMode::kSimd}};
    std::printf("Kernel tiers (batch=32, simd backend: %s):\n",
                nn::SimdBackendName());
    for (const Tier& tier : tiers) {
      const nn::KernelModeScope scope(tier.mode);
      sw.Reset();
      for (size_t pos = 0; pos < stream.size(); pos += 32) {
        const size_t m = std::min(size_t{32}, stream.size() - pos);
        const auto etas = model.PredictBatch({&stream[pos], m});
        sink += etas[0];
      }
      const double secs = sw.ElapsedSeconds();
      std::printf("  %-8s %8.0f queries/s\n", tier.name, n / secs);
      records.push_back({std::string("serving/kernel/") + tier.name + "/qps",
                         secs, 1, n / secs});
    }
  }

  // --- Cache hit-rate sweep --------------------------------------------------
  for (const size_t capacity : {size_t{0}, size_t{64}, size_t{1024}}) {
    serve::EtaServiceOptions options;
    options.cache_capacity = capacity;
    serve::EtaService service(model, options);
    sw.Reset();
    for (const auto& od : stream) sink += service.Estimate(od);
    const double secs = sw.ElapsedSeconds();
    const auto stats = service.StatsSnapshot();
    const double hit_rate =
        stats.cache_hits + stats.cache_misses == 0
            ? 0.0
            : static_cast<double>(stats.cache_hits) /
                  static_cast<double>(stats.cache_hits + stats.cache_misses);
    std::printf(
        "EtaService capacity=%-5zu: %8.0f queries/s  hit rate %.1f%%  "
        "p50 %.3f ms  p99 %.3f ms\n",
        capacity, n / secs, 100.0 * hit_rate, stats.p50_ms, stats.p99_ms);
    const std::string prefix =
        "serving/cache/capacity=" + std::to_string(capacity);
    records.push_back({prefix + "/qps", secs, 1, n / secs});
    records.push_back({prefix + "/hit_rate", hit_rate, 1, 0.0});
  }

  // --- Micro-batched TrySubmit -----------------------------------------------
  {
    serve::EtaServiceOptions options;
    options.batch_threads = auto_threads;
    serve::EtaService service(model, options);
    std::vector<std::future<double>> futures;
    futures.reserve(stream.size());
    sw.Reset();
    for (const auto& od : stream) {
      // The primary bounded-wait API; a full queue is backpressure, not an
      // error — keep retrying like a producer that cannot shed.
      std::optional<std::future<double>> f;
      while (!(f = service.TrySubmit(od, std::chrono::milliseconds(100)))) {
      }
      futures.push_back(std::move(*f));
    }
    for (auto& f : futures) sink += f.get();
    const double secs = sw.ElapsedSeconds();
    const auto stats = service.StatsSnapshot();
    std::printf(
        "TrySubmit micro-batching:  %8.0f queries/s  avg batch %.1f  "
        "p50 %.3f ms  p99 %.3f ms\n",
        n / secs, stats.avg_batch_size, stats.p50_ms, stats.p99_ms);
    records.push_back(
        {"serving/microbatch/qps", secs, auto_threads, n / secs});

    // The obs-exported serving stats share the BENCH-json schema, so the
    // same validator covers them (tools/validate_bench_json.py).
    std::ofstream stats_out("BENCH_serving_stats.json");
    stats_out << service.ExportJson();
    std::fprintf(stderr, "[bench] wrote BENCH_serving_stats.json\n");
  }

  // --- Quantised serving -----------------------------------------------------
  // Round-trips the model through an artifact and stands one service up per
  // weight tier (fp64 / fp16 / int8) on the kSimd kernel path with the
  // cache off, so qps measures the model forward and mae the quantisation
  // error alone. The fp64 service's answers are the golden values.
  {
    const double window_begin = 10.0 * 86400.0 + 8.0 * 3600.0;
    const sim::SnapshotSpeedField snap = sim::SnapshotSpeedField::Capture(
        *model.speed_provider(), window_begin, window_begin + 1800.0);
    const std::string artifact_path = "bench_serving_quant.artifact";
    io::WriteModelArtifact(artifact_path, model, &snap);

    struct QuantTier {
      const char* name;
      nn::QuantMode mode;
    };
    const QuantTier tiers[] = {{"fp64", nn::QuantMode::kNone},
                               {"fp16", nn::QuantMode::kFp16},
                               {"int8", nn::QuantMode::kInt8}};
    std::vector<double> golden;
    std::printf("Quantised serving (kSimd, cache off):\n");
    for (const QuantTier& tier : tiers) {
      serve::EtaServiceOptions options;
      options.cache_capacity = 0;
      options.kernel_mode = nn::KernelMode::kSimd;
      options.quant = tier.mode;
      const auto service =
          serve::EtaService::FromArtifact(artifact_path, dataset.network,
                                          options);
      std::vector<double> answers;
      answers.reserve(stream.size());
      sw.Reset();
      for (const auto& od : stream) answers.push_back(service->Estimate(od));
      const double secs = sw.ElapsedSeconds();
      double mae = 0.0;
      if (golden.empty()) {
        golden = answers;
      } else {
        for (size_t i = 0; i < answers.size(); ++i) {
          mae += std::abs(answers[i] - golden[i]);
        }
        mae /= n;
      }
      sink += answers[0];
      std::printf("  %-5s %8.0f queries/s  mae %.4f s\n", tier.name, n / secs,
                  mae);
      const std::string prefix = std::string("serving/quant/") + tier.name;
      records.push_back({prefix + "/qps", secs, 1, n / secs});
      // MAE in seconds vs. the fp64 answers, carried in wall_seconds like
      // the hit_rate records (a value, not a time; 0 for the fp64 tier).
      records.push_back({prefix + "/mae", mae, 1, 0.0});
    }
    std::remove(artifact_path.c_str());
  }

  std::printf("(checksum %.6f)\n", sink);
  bench::WriteBenchJson("BENCH_serving.json", records);
  if (obs::TraceEnabled()) {
    obs::WriteTraceJson("deepod_trace.json");
    std::fprintf(stderr, "[bench] wrote deepod_trace.json (%zu events)\n",
                 obs::TraceEventCount());
  }
  return 0;
}
