// Table 2: taxi-order dataset statistics (orders, avg travel time, avg
// number of road segments, avg trip length) for the three simulated cities.
#include <cstdio>

#include "bench/common.h"
#include "util/table.h"

using namespace deepod;

int main() {
  bench::PrintBanner("Table 2 — dataset statistics (simulated substitutes)");
  util::Table table({"dataset", "# vertices", "# segments", "# orders",
                     "avg time (s)", "avg # segments", "avg length (m)",
                     "gps period (s)"});
  for (bench::City city : bench::AllCities()) {
    const auto config = bench::StandardConfig(city);
    const sim::Dataset ds = sim::BuildDataset(config);
    const auto stats = sim::ComputeStats(ds);
    table.AddRow({ds.name, std::to_string(ds.network.num_vertices()),
                  std::to_string(ds.network.num_segments()),
                  std::to_string(stats.num_orders),
                  util::Fmt(stats.avg_travel_time, 1),
                  util::Fmt(stats.avg_num_segments, 1),
                  util::Fmt(stats.avg_length_m, 0),
                  bench::CityName(city) == "beijing-sim" ? "60" : "3"});
  }
  table.Print();
  std::printf(
      "\nPaper shape check: Beijing largest network & most orders with the\n"
      "longest trips; Chengdu > Xi'an in order count; Beijing GPS sparser.\n");
  return 0;
}
