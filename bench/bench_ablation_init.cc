// Extension bench (design-choice check called out in DESIGN.md): compare
// the unsupervised embedding initialisers — node2vec vs DeepWalk vs LINE vs
// random — as Algorithm 1's initialisation. The paper reports node2vec was
// the best of the three it tried (§5).
#include <cstdio>

#include "analysis/metrics.h"
#include "bench/common.h"
#include "util/table.h"

using namespace deepod;

int main() {
  bench::PrintBanner(
      "Ablation — graph-embedding initialiser (node2vec / DeepWalk / LINE / "
      "random), xian mini profile");
  const sim::Dataset ds = sim::BuildDataset(bench::MiniConfig(bench::City::kXian));
  std::vector<double> truth;
  for (const auto& t : ds.test) truth.push_back(t.travel_time);

  util::Table table({"initialiser", "test MAE (s)", "test MAPE (%)"});
  for (embed::EmbedMethod method :
       {embed::EmbedMethod::kNode2Vec, embed::EmbedMethod::kDeepWalk,
        embed::EmbedMethod::kLine, embed::EmbedMethod::kRandom}) {
    core::DeepOdConfig config = bench::BenchModelConfig();
    config.epochs = 8;
    config.embed_method = method;
    config.loss_weight_w = bench::BenchLossWeight(bench::City::kXian);
    if (method == embed::EmbedMethod::kRandom) {
      config.road_init = core::RoadInit::kOneHot;
      config.time_init = core::TimeInit::kOneHot;
    }
    const auto result =
        bench::RunDeepOdVariant(ds, config, embed::EmbedMethodName(method));
    table.AddRow({embed::EmbedMethodName(method),
                  util::Fmt(analysis::Mae(truth, result.predictions), 1),
                  util::Fmt(analysis::Mape(truth, result.predictions), 2)});
    std::fprintf(stderr, "[bench] %s done\n",
                 embed::EmbedMethodName(method).c_str());
  }
  table.Print();
  std::printf(
      "\nPaper shape check: pre-trained initialisers beat random init; the\n"
      "gap is modest because supervised fine-tuning recovers much of it\n"
      "(§6.5 observation 1); node2vec is the paper's pick.\n");
  return 0;
}
