// Table 4: test errors (MAE / MAPE / MARE) for TEMP, LR, GBM, STNN, MURAT,
// the four DeepOD ablations (N-st, N-sp, N-tp, N-other) and DeepOD on the
// three cities — the paper's flagship comparison.
#include <cstdio>

#include "analysis/metrics.h"
#include "bench/common.h"
#include "util/table.h"

using namespace deepod;

int main() {
  bench::PrintBanner("Table 4 — test errors of all methods on three cities");
  const std::vector<std::string> methods = {"TEMP", "LR",   "GBM",
                                            "STNN", "MURAT", "N-st",
                                            "N-sp", "N-tp", "N-other",
                                            "DeepOD"};
  util::Table table({"method", "city", "MAE (s)", "MAPE (%)", "MARE (%)"});
  for (bench::City city : bench::AllCities()) {
    const auto& run = bench::GetStandardRun(city);
    for (const auto& name : methods) {
      const auto& m = run.Method(name);
      const auto metrics = analysis::AllMetrics(run.truth, m.predictions);
      table.AddRow({name, run.city, util::Fmt(metrics.mae, 1),
                    util::Fmt(metrics.mape, 2), util::Fmt(metrics.mare, 2)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape check: DeepOD best on every city; MURAT the runner-up\n"
      "among baselines; LR worst; removing the trajectory encoding (N-st)\n"
      "hurts the most among the ablations.\n");
  return 0;
}
