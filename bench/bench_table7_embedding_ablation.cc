// Table 7: MAPE of the embedding-initialisation ablations — T-one (random
// init for time slots), T-day (daily temporal graph), T-stamp (raw
// timestamps), R-one (random init for road segments) — relative to DeepOD,
// on all three cities.
#include <cstdio>

#include "analysis/metrics.h"
#include "bench/common.h"
#include "util/table.h"

using namespace deepod;

namespace {

struct Variant {
  const char* name;
  core::TimeInit time_init;
  core::RoadInit road_init;
};

}  // namespace

int main() {
  bench::PrintBanner("Table 7 — embedding ablations (MAPE %, Δ vs DeepOD)");
  const std::vector<Variant> variants = {
      {"T-one", core::TimeInit::kOneHot, core::RoadInit::kGraphEmbedding},
      {"T-day", core::TimeInit::kDailyGraph, core::RoadInit::kGraphEmbedding},
      {"T-stamp", core::TimeInit::kTimestamp, core::RoadInit::kGraphEmbedding},
      {"R-one", core::TimeInit::kTemporalGraph, core::RoadInit::kOneHot},
  };
  util::Table table(
      {"city", "DeepOD", "T-one", "T-day", "T-stamp", "R-one"});
  for (bench::City city : bench::AllCities()) {
    // Mini profile: one training per variant per city; the paper's claim is
    // about the *relative* ordering of the variants.
    const sim::Dataset ds = sim::BuildDataset(bench::MiniConfig(city));
    std::vector<double> truth;
    for (const auto& t : ds.test) truth.push_back(t.travel_time);

    core::DeepOdConfig base = bench::BenchModelConfig();
    base.epochs = 8;
    base.loss_weight_w = bench::BenchLossWeight(city);
    const auto full = bench::RunDeepOdVariant(ds, base, "DeepOD");
    const double full_mape = analysis::Mape(truth, full.predictions);

    std::vector<std::string> row = {bench::CityName(city),
                                    util::Fmt(full_mape, 2)};
    for (const auto& v : variants) {
      core::DeepOdConfig config = base;
      config.time_init = v.time_init;
      config.road_init = v.road_init;
      const auto result = bench::RunDeepOdVariant(ds, config, v.name);
      const double mape = analysis::Mape(truth, result.predictions);
      const double delta = 100.0 * (mape - full_mape) / full_mape;
      row.push_back(util::Fmt(mape, 2) + " (" +
                    (delta >= 0 ? "+" : "") + util::Fmt(delta, 1) + "%)");
      std::fprintf(stderr, "[bench] %s %s done\n", bench::CityName(city).c_str(),
                   v.name);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nPaper shape check: every ablation is worse than DeepOD; T-stamp is\n"
      "by far the worst (raw timestamps dominate other features); T-one /\n"
      "T-day / R-one deteriorate only mildly since the supervised fine-tune\n"
      "partially recovers the lost initialisation.\n");
  return 0;
}
