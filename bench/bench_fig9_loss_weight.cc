// Fig. 9: distribution of per-mini-batch validation MAPE as the auxiliary
// loss weight w sweeps 0.1..0.9 (box-plot statistics), per city.
#include <cstdio>

#include "analysis/metrics.h"
#include "bench/common.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "util/stats.h"
#include "util/table.h"

using namespace deepod;

int main() {
  bench::PrintBanner(
      "Fig. 9 — validation MAPE vs auxiliary-loss weight w (box statistics "
      "over mini-batches, mini profile)");
  util::Table table({"city", "w", "q1", "median", "q3", "mean"});
  for (bench::City city : bench::AllCities()) {
    const sim::Dataset ds = sim::BuildDataset(bench::MiniConfig(city));
    for (double w : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      core::DeepOdConfig config = bench::BenchModelConfig();
      config.epochs = 5;
      config.loss_weight_w = w;
      core::DeepOdModel model(config, ds);
      core::DeepOdTrainer trainer(model, ds);
      trainer.Train(nullptr, 1u << 30, 120);

      // Per-mini-batch MAPE over the validation split (batch 64 here so a
      // mini dataset still yields enough boxes).
      constexpr size_t kBatch = 64;
      std::vector<double> batch_mapes;
      std::vector<double> truth, pred;
      for (const auto& trip : ds.validation) {
        truth.push_back(trip.travel_time);
        pred.push_back(model.Predict(trip.od));
        if (truth.size() == kBatch) {
          batch_mapes.push_back(analysis::Mape(truth, pred));
          truth.clear();
          pred.clear();
        }
      }
      if (!truth.empty()) batch_mapes.push_back(analysis::Mape(truth, pred));
      const auto box = util::Box(batch_mapes);
      table.AddRow({bench::CityName(city), util::Fmt(w, 1),
                    util::Fmt(box.q1, 2), util::Fmt(box.median, 2),
                    util::Fmt(box.q3, 2),
                    util::Fmt(util::Mean(batch_mapes), 2)});
      std::fprintf(stderr, "[bench] %s w=%.1f done\n",
                   bench::CityName(city).c_str(), w);
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape check: MAPE first improves as w grows from 0.1, then\n"
      "worsens past a per-city optimum (the paper tunes w = 0.7 / 0.3 / 0.5\n"
      "for Chengdu / Xi'an / Beijing; the optimum location is data-scale\n"
      "dependent).\n");
  return 0;
}
