// Network-serving bench: stands a DeepOdServer up in-process on an
// ephemeral port and drives it with the open-loop load generator, writing
// BENCH_server.json (obs::Record schema — the percentile-bearing superset
// of the BenchJsonRecord lines; tools/validate_bench_json.py covers both):
//   - server/steady/{throughput,goodput,shed_rate,latency}: ~200 qps
//     against a generously provisioned server — the sustained-load
//     contract. throughput carries achieved qps in samples_per_sec;
//     latency carries client-observed p50/p95/p99.
//   - server/overload/{offered,goodput,shed_rate,latency}: ~20x the steady
//     rate against a deliberately small queue + per-tenant quotas. The
//     point is the shedding contract: most of the load is rejected with
//     typed statuses, while the latency of what IS admitted stays bounded
//     (no queueing collapse). shed_rate here is expected to be large.
//   - server/policy/{model,oracle,linkmean}/{mae,latency}: the serving-time
//     estimator tiers compared offline on the held-out test trips — what a
//     fleet operator trades away when a city answers from a fallback tier
//     instead of its model.
//   - server/policy/cold_{oracle,model}/availability: a cold fleet shard
//     over the wire under both fallback policies. The oracle policy keeps
//     availability at 1.0 (every answer from the oracle tier); the model
//     policy rejects everything with kShardCold.
// goodput/shed_rate/mae/availability are value records; bench_compare.py
// skips those names (load- and data-dependent values, not regressions).
// Usage: bench_server [steady_qps] (default 200; CI smoke passes less).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "baselines/od_oracle.h"
#include "baselines/path_tte.h"
#include "bench/common.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "io/model_artifact.h"
#include "io/trip_io.h"
#include "obs/metrics.h"
#include "serve/eta_service.h"
#include "serve/fleet_router.h"
#include "serve/server/loadgen.h"
#include "serve/server/server.h"
#include "sim/dataset.h"

using namespace deepod;

namespace {

void AppendScenarioRecords(const std::string& prefix,
                           const serve::net::LoadgenReport& report,
                           size_t connections,
                           std::vector<obs::Record>* records) {
  obs::Record throughput;
  throughput.name = prefix + "/throughput";
  throughput.wall_seconds = report.elapsed_seconds;
  throughput.threads = connections;
  if (report.achieved_qps > 0.0) {
    throughput.samples_per_sec = report.achieved_qps;
  }
  throughput.count = static_cast<double>(report.ok);
  records->push_back(throughput);

  obs::Record latency;
  latency.name = prefix + "/latency";
  latency.wall_seconds = report.elapsed_seconds;
  latency.threads = connections;
  latency.count = static_cast<double>(report.ok);
  latency.p50_ms = report.p50_ms;
  latency.p95_ms = report.p95_ms;
  latency.p99_ms = report.p99_ms;
  records->push_back(latency);

  obs::Record goodput;
  goodput.name = prefix + "/goodput";
  goodput.wall_seconds = report.elapsed_seconds;
  goodput.threads = connections;
  goodput.value = report.goodput_qps;
  records->push_back(goodput);

  obs::Record shed;
  shed.name = prefix + "/shed_rate";
  shed.wall_seconds = report.elapsed_seconds;
  shed.threads = connections;
  shed.value = report.shed_rate;
  shed.count = static_cast<double>(report.shed);
  records->push_back(shed);
}

void PrintScenario(const char* label,
                   const serve::net::LoadgenReport& report) {
  std::printf(
      "%s: offered %.0f qps -> ok %llu shed %llu (rate %.3f) lost %llu\n"
      "  latency ms: p50 %.3f p95 %.3f p99 %.3f | goodput %.0f qps\n",
      label, report.offered_qps,
      static_cast<unsigned long long>(report.ok),
      static_cast<unsigned long long>(report.shed), report.shed_rate,
      static_cast<unsigned long long>(report.lost), report.p50_ms,
      report.p95_ms, report.p99_ms, report.goodput_qps);
}

double PercentileMs(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const size_t idx = static_cast<size_t>(q * double(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const double steady_qps = argc > 1 ? std::atof(argv[1]) : 200.0;
  bench::PrintBanner("Network serving — admission control, shedding");

  const sim::Dataset dataset =
      sim::BuildDataset(bench::MiniConfig(bench::City::kXian));
  // A few epochs are enough to make the policy comparison below honest
  // (the serving scenarios only care about inference cost, which training
  // does not change).
  core::DeepOdConfig model_config = bench::BenchModelConfig();
  model_config.epochs = 4;
  core::DeepOdModel model(model_config, dataset);
  {
    core::DeepOdTrainer trainer(model, dataset);
    trainer.Train();
  }
  model.SetTraining(false);

  std::vector<obs::Record> records;

  // --- Steady state: under capacity, nothing should shed --------------------
  {
    serve::EtaService service(model, serve::EtaServiceOptions{});
    serve::net::ServerOptions server_options;
    server_options.num_segments = dataset.network.num_segments();
    server_options.executors = 2;
    serve::net::DeepOdServer server(service, server_options);
    server.Start();

    serve::net::LoadgenOptions load;
    load.port = server.port();
    load.qps = steady_qps;
    load.duration_seconds = 2.5;
    load.connections = 4;
    load.num_segments = dataset.network.num_segments();
    load.slo_ms = 250.0;
    load.fetch_server_stats = false;
    const auto report = serve::net::RunLoadgen(load);
    server.Shutdown();
    PrintScenario("steady", report);
    AppendScenarioRecords("server/steady", report, load.connections, &records);
  }

  // --- Overload: 20x offered, small queue + tenant quotas --------------------
  // The server must shed (quota + queue-full) rather than queue to death;
  // the admitted slice keeps a bounded p99 because the backlog can never
  // exceed queue_capacity.
  {
    serve::EtaService service(model, serve::EtaServiceOptions{});
    serve::net::ServerOptions server_options;
    server_options.num_segments = dataset.network.num_segments();
    server_options.executors = 1;
    server_options.admission.queue_capacity = 64;
    server_options.admission.num_tenants = 4;
    server_options.admission.tenant_rate = 100.0;
    server_options.admission.tenant_burst = 50.0;
    serve::net::DeepOdServer server(service, server_options);
    server.Start();

    serve::net::LoadgenOptions load;
    load.port = server.port();
    load.qps = steady_qps * 20.0;
    load.duration_seconds = 2.0;
    load.connections = 8;
    load.num_segments = dataset.network.num_segments();
    load.num_tenants = 4;
    load.slo_ms = 250.0;
    load.fetch_server_stats = false;
    const auto report = serve::net::RunLoadgen(load);
    server.Shutdown();
    PrintScenario("overload", report);

    obs::Record offered;
    offered.name = "server/overload/offered";
    offered.wall_seconds = report.elapsed_seconds;
    offered.threads = load.connections;
    if (report.offered_qps > 0.0) offered.samples_per_sec = report.offered_qps;
    offered.count = static_cast<double>(report.sent);
    records.push_back(offered);
    AppendScenarioRecords("server/overload", report, load.connections,
                          &records);
  }

  // --- Serving-policy comparison: model vs oracle vs link-mean ---------------
  // What a fleet trades away when a city answers from a fallback tier: the
  // accuracy and per-call latency of each estimator over the held-out test
  // trips, and the availability a cold shard keeps under each policy.
  baselines::OdOracle oracle(dataset.network, baselines::OdOracle::Options{});
  baselines::LinkMeanEstimator links;
  for (const auto& trip : dataset.train) {
    oracle.Add(dataset.network, trip.od, trip.travel_time);
    links.Add(trip.trajectory);
  }
  oracle.Finalize();
  links.Finalize(dataset.network.num_segments());

  {
    const size_t eval_n = std::min<size_t>(dataset.test.size(), 400);
    struct Tier {
      const char* name;
      std::function<double(const traj::OdInput&)> predict;
    };
    const Tier tiers[] = {
        {"model", [&](const traj::OdInput& od) { return model.Predict(od); }},
        {"oracle",
         [&](const traj::OdInput& od) {
           return oracle.Predict(dataset.network, od);
         }},
        {"linkmean",
         [&](const traj::OdInput& od) {
           return links.Predict(dataset.network, od);
         }},
    };
    for (const Tier& tier : tiers) {
      double abs_error_sum = 0.0;
      double wall = 0.0;
      std::vector<double> call_ms;
      call_ms.reserve(eval_n);
      for (size_t i = 0; i < eval_n; ++i) {
        const auto& trip = dataset.test[i];
        const auto t0 = std::chrono::steady_clock::now();
        const double eta = tier.predict(trip.od);
        const auto t1 = std::chrono::steady_clock::now();
        abs_error_sum += std::fabs(eta - trip.travel_time);
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        call_ms.push_back(ms);
        wall += ms / 1000.0;
      }
      const double mae =
          eval_n == 0 ? 0.0 : abs_error_sum / static_cast<double>(eval_n);

      obs::Record mae_record;
      mae_record.name = std::string("server/policy/") + tier.name + "/mae";
      mae_record.wall_seconds = wall;
      mae_record.count = static_cast<double>(eval_n);
      mae_record.value = mae;
      records.push_back(mae_record);

      obs::Record latency;
      latency.name = std::string("server/policy/") + tier.name + "/latency";
      latency.wall_seconds = wall;
      latency.count = static_cast<double>(eval_n);
      latency.p50_ms = PercentileMs(call_ms, 0.50);
      latency.p95_ms = PercentileMs(call_ms, 0.95);
      latency.p99_ms = PercentileMs(call_ms, 0.99);
      records.push_back(latency);

      std::printf("policy/%s: mae %.1f s | call ms p50 %.4f p99 %.4f (%zu "
                  "test trips)\n",
                  tier.name, mae, *latency.p50_ms, *latency.p99_ms, eval_n);
    }
  }

  // --- Cold-shard availability under both fallback policies ------------------
  {
    namespace fs = std::filesystem;
    const fs::path root = fs::path("bench_fleet_tmp");
    fs::create_directories(root);
    io::WriteNetworkCsv(dataset.network, (root / "city.network.csv").string());
    io::WriteOracleArtifact((root / "city.oracle.artifact").string(), 1,
                            &oracle, &links);
    for (const char* policy : {"oracle", "model"}) {
      const fs::path manifest = root / (std::string("fleet_") + policy + ".csv");
      {
        std::ofstream out(manifest);
        out << "network_id,name,network,artifact,oracle,policy\n"
            << "1,city,city.network.csv,city.model.artifact,"
               "city.oracle.artifact,"
            << policy << "\n";  // model artifact deliberately absent: cold
      }
      serve::FleetRouterOptions router_options;
      router_options.activation_poll = std::chrono::milliseconds(600000);
      serve::FleetRouter router(serve::ReadFleetManifest(manifest.string()),
                                router_options);
      serve::net::ServerOptions server_options;
      server_options.executors = 2;
      serve::net::DeepOdServer server(router, server_options);
      server.Start();

      serve::net::LoadgenOptions load;
      load.port = server.port();
      load.qps = steady_qps;
      load.duration_seconds = 1.5;
      load.connections = 4;
      load.num_segments = dataset.network.num_segments();
      load.network_ids = {1};
      load.slo_ms = 250.0;
      load.fetch_server_stats = false;
      const auto report = serve::net::RunLoadgen(load);
      server.Shutdown();
      router.Stop();

      const double availability =
          report.sent == 0
              ? 0.0
              : static_cast<double>(report.ok) / static_cast<double>(report.sent);
      std::printf("policy/cold_%s: sent %llu ok %llu (oracle %llu) "
                  "availability %.3f\n",
                  policy, static_cast<unsigned long long>(report.sent),
                  static_cast<unsigned long long>(report.ok),
                  static_cast<unsigned long long>(report.oracle_ok),
                  availability);

      obs::Record record;
      record.name = std::string("server/policy/cold_") + policy +
                    "/availability";
      record.wall_seconds = report.elapsed_seconds;
      record.threads = load.connections;
      record.count = static_cast<double>(report.ok);
      record.value = availability;
      records.push_back(record);
    }
  }

  obs::WriteRecordsJson("BENCH_server.json", records);
  std::fprintf(stderr, "[bench] wrote BENCH_server.json\n");
  return 0;
}
