// Network-serving bench: stands a DeepOdServer up in-process on an
// ephemeral port and drives it with the open-loop load generator, writing
// BENCH_server.json (obs::Record schema — the percentile-bearing superset
// of the BenchJsonRecord lines; tools/validate_bench_json.py covers both):
//   - server/steady/{throughput,goodput,shed_rate,latency}: ~200 qps
//     against a generously provisioned server — the sustained-load
//     contract. throughput carries achieved qps in samples_per_sec;
//     latency carries client-observed p50/p95/p99.
//   - server/overload/{offered,goodput,shed_rate,latency}: ~20x the steady
//     rate against a deliberately small queue + per-tenant quotas. The
//     point is the shedding contract: most of the load is rejected with
//     typed statuses, while the latency of what IS admitted stays bounded
//     (no queueing collapse). shed_rate here is expected to be large.
// goodput/shed_rate are value records; bench_compare.py skips *goodput*
// and *shed_rate* names like it skips *mae* (load-dependent values, not
// regressions).
// Usage: bench_server [steady_qps] (default 200; CI smoke passes less).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/deepod_model.h"
#include "obs/metrics.h"
#include "serve/eta_service.h"
#include "serve/server/loadgen.h"
#include "serve/server/server.h"
#include "sim/dataset.h"

using namespace deepod;

namespace {

void AppendScenarioRecords(const std::string& prefix,
                           const serve::net::LoadgenReport& report,
                           size_t connections,
                           std::vector<obs::Record>* records) {
  obs::Record throughput;
  throughput.name = prefix + "/throughput";
  throughput.wall_seconds = report.elapsed_seconds;
  throughput.threads = connections;
  if (report.achieved_qps > 0.0) {
    throughput.samples_per_sec = report.achieved_qps;
  }
  throughput.count = static_cast<double>(report.ok);
  records->push_back(throughput);

  obs::Record latency;
  latency.name = prefix + "/latency";
  latency.wall_seconds = report.elapsed_seconds;
  latency.threads = connections;
  latency.count = static_cast<double>(report.ok);
  latency.p50_ms = report.p50_ms;
  latency.p95_ms = report.p95_ms;
  latency.p99_ms = report.p99_ms;
  records->push_back(latency);

  obs::Record goodput;
  goodput.name = prefix + "/goodput";
  goodput.wall_seconds = report.elapsed_seconds;
  goodput.threads = connections;
  goodput.value = report.goodput_qps;
  records->push_back(goodput);

  obs::Record shed;
  shed.name = prefix + "/shed_rate";
  shed.wall_seconds = report.elapsed_seconds;
  shed.threads = connections;
  shed.value = report.shed_rate;
  shed.count = static_cast<double>(report.shed);
  records->push_back(shed);
}

void PrintScenario(const char* label,
                   const serve::net::LoadgenReport& report) {
  std::printf(
      "%s: offered %.0f qps -> ok %llu shed %llu (rate %.3f) lost %llu\n"
      "  latency ms: p50 %.3f p95 %.3f p99 %.3f | goodput %.0f qps\n",
      label, report.offered_qps,
      static_cast<unsigned long long>(report.ok),
      static_cast<unsigned long long>(report.shed), report.shed_rate,
      static_cast<unsigned long long>(report.lost), report.p50_ms,
      report.p95_ms, report.p99_ms, report.goodput_qps);
}

}  // namespace

int main(int argc, char** argv) {
  const double steady_qps = argc > 1 ? std::atof(argv[1]) : 200.0;
  bench::PrintBanner("Network serving — admission control, shedding");

  const sim::Dataset dataset =
      sim::BuildDataset(bench::MiniConfig(bench::City::kXian));
  core::DeepOdModel model(bench::BenchModelConfig(), dataset);
  model.SetTraining(false);

  std::vector<obs::Record> records;

  // --- Steady state: under capacity, nothing should shed --------------------
  {
    serve::EtaService service(model, serve::EtaServiceOptions{});
    serve::net::ServerOptions server_options;
    server_options.num_segments = dataset.network.num_segments();
    server_options.executors = 2;
    serve::net::DeepOdServer server(service, server_options);
    server.Start();

    serve::net::LoadgenOptions load;
    load.port = server.port();
    load.qps = steady_qps;
    load.duration_seconds = 2.5;
    load.connections = 4;
    load.num_segments = dataset.network.num_segments();
    load.slo_ms = 250.0;
    load.fetch_server_stats = false;
    const auto report = serve::net::RunLoadgen(load);
    server.Shutdown();
    PrintScenario("steady", report);
    AppendScenarioRecords("server/steady", report, load.connections, &records);
  }

  // --- Overload: 20x offered, small queue + tenant quotas --------------------
  // The server must shed (quota + queue-full) rather than queue to death;
  // the admitted slice keeps a bounded p99 because the backlog can never
  // exceed queue_capacity.
  {
    serve::EtaService service(model, serve::EtaServiceOptions{});
    serve::net::ServerOptions server_options;
    server_options.num_segments = dataset.network.num_segments();
    server_options.executors = 1;
    server_options.admission.queue_capacity = 64;
    server_options.admission.num_tenants = 4;
    server_options.admission.tenant_rate = 100.0;
    server_options.admission.tenant_burst = 50.0;
    serve::net::DeepOdServer server(service, server_options);
    server.Start();

    serve::net::LoadgenOptions load;
    load.port = server.port();
    load.qps = steady_qps * 20.0;
    load.duration_seconds = 2.0;
    load.connections = 8;
    load.num_segments = dataset.network.num_segments();
    load.num_tenants = 4;
    load.slo_ms = 250.0;
    load.fetch_server_stats = false;
    const auto report = serve::net::RunLoadgen(load);
    server.Shutdown();
    PrintScenario("overload", report);

    obs::Record offered;
    offered.name = "server/overload/offered";
    offered.wall_seconds = report.elapsed_seconds;
    offered.threads = load.connections;
    if (report.offered_qps > 0.0) offered.samples_per_sec = report.offered_qps;
    offered.count = static_cast<double>(report.sent);
    records.push_back(offered);
    AppendScenarioRecords("server/overload", report, load.connections,
                          &records);
  }

  obs::WriteRecordsJson("BENCH_server.json", records);
  std::fprintf(stderr, "[bench] wrote BENCH_server.json\n");
  return 0;
}
