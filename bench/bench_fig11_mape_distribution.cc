// Fig. 11: probability density of per-trip MAPE on the test split for every
// method (chengdu & xian) — DeepOD's distribution should have the smallest
// mean and variance.
#include <cstdio>

#include "analysis/metrics.h"
#include "bench/common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace deepod;

int main() {
  bench::PrintBanner(
      "Fig. 11 — per-trip MAPE distribution on test data (PDF over 10%-wide "
      "bins, plus mean/stddev)");
  const std::vector<std::string> methods = {"TEMP", "LR",    "GBM",
                                            "STNN", "MURAT", "DeepOD"};
  for (bench::City city : {bench::City::kChengdu, bench::City::kXian}) {
    const auto& run = bench::GetStandardRun(city);
    std::printf("\n--- %s ---\n", run.city.c_str());
    util::Table table({"method", "0-10", "10-20", "20-30", "30-40", "40-50",
                       "50-60", ">60", "mean", "stddev"});
    for (const auto& name : methods) {
      const auto ape = analysis::PerTripApe(run.truth,
                                            run.Method(name).predictions);
      // Density over 10-point bins up to 60%, plus an overflow share.
      const auto density = util::HistogramDensity(ape, 0.0, 70.0, 7);
      std::vector<std::string> row = {name};
      for (size_t b = 0; b < 7; ++b) {
        row.push_back(util::Fmt(density[b] * 10.0, 3));  // bin probability
      }
      row.push_back(util::Fmt(util::Mean(ape), 1));
      row.push_back(util::Fmt(util::Stddev(ape), 1));
      table.AddRow(row);
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape check: DeepOD's per-trip MAPE distribution has the\n"
      "smallest mean and smallest spread; LR/TEMP have heavy right tails.\n");
  return 0;
}
