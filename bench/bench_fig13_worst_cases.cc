// Fig. 13: the 50 worst-performing test cases per method (ranked by MAPE) —
// worst cases cluster at short actual times with large over-estimates.
#include <cstdio>

#include "analysis/metrics.h"
#include "bench/common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace deepod;

int main() {
  bench::PrintBanner("Fig. 13 — worst-50 test cases per method (by MAPE)");
  const std::vector<std::string> methods = {"TEMP", "LR",    "GBM",
                                            "STNN", "MURAT", "DeepOD"};
  for (bench::City city : {bench::City::kChengdu, bench::City::kXian}) {
    const auto& run = bench::GetStandardRun(city);
    std::printf("\n--- %s ---\n", run.city.c_str());
    util::Table table({"method", "worst-50 mean MAPE (%)",
                       "worst-50 max MAPE (%)", "mean actual (s)"});
    for (const auto& name : methods) {
      const auto& pred = run.Method(name).predictions;
      auto ape = analysis::PerTripApe(run.truth, pred);
      // Indices of the 50 largest APEs.
      std::vector<size_t> order(ape.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::partial_sort(order.begin(),
                        order.begin() + std::min<size_t>(50, order.size()),
                        order.end(),
                        [&](size_t a, size_t b) { return ape[a] > ape[b]; });
      order.resize(std::min<size_t>(50, order.size()));
      std::vector<double> worst_ape, worst_actual;
      for (size_t idx : order) {
        worst_ape.push_back(ape[idx]);
        worst_actual.push_back(run.truth[idx]);
      }
      table.AddRow({name, util::Fmt(util::Mean(worst_ape), 1),
                    util::Fmt(util::Max(worst_ape), 1),
                    util::Fmt(util::Mean(worst_actual), 1)});
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape check: DeepOD's worst cases are the mildest; TEMP has\n"
      "extreme outliers (its neighbour-similarity heuristic breaks on odd\n"
      "trips); worst cases concentrate on short actual travel times.\n");
  return 0;
}
