#ifndef DEEPOD_TOOLS_DATAGEN_MANIFEST_H_
#define DEEPOD_TOOLS_DATAGEN_MANIFEST_H_

// Shared between deepod_datagen (writer) and deepod_train --data (reader):
// the manifest.csv key/value schema describing how a datagen directory was
// generated, sufficient to rebuild the identical dataset environment
// (city, traffic, weather, speed matrices) deterministically.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/dataset.h"

namespace deepod::tools {

struct DatagenManifest {
  std::string city = "xian";
  size_t grid = 0;  // 0 = the city preset's own rows/cols
  size_t trips_per_day = 12;
  size_t num_days = 15;
  uint64_t seed = 17;
  size_t shards = 4;
  bool rematch_gps = false;
  size_t train_count = 0;
  size_t val_count = 0;
  size_t test_count = 0;
};

inline sim::DatasetConfig ToDatasetConfig(const DatagenManifest& m) {
  sim::DatasetConfig config;
  if (m.city == "chengdu") {
    config.city = road::ChengduSimConfig();
  } else if (m.city == "beijing") {
    config.city = road::BeijingSimConfig();
  } else {
    config.city = road::XianSimConfig();
  }
  if (m.grid > 0) {
    config.city.rows = m.grid;
    config.city.cols = m.grid;
  }
  config.trips_per_day = m.trips_per_day;
  config.num_days = m.num_days;
  config.seed = m.seed;
  return config;
}

inline void WriteManifest(const std::string& path, const DatagenManifest& m) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("datagen: cannot open " + path);
  out << "key,value\n"
      << "city," << m.city << "\n"
      << "grid," << m.grid << "\n"
      << "trips_per_day," << m.trips_per_day << "\n"
      << "days," << m.num_days << "\n"
      << "seed," << m.seed << "\n"
      << "shards," << m.shards << "\n"
      << "match," << (m.rematch_gps ? 1 : 0) << "\n"
      << "train," << m.train_count << "\n"
      << "val," << m.val_count << "\n"
      << "test," << m.test_count << "\n";
}

inline DatagenManifest ReadManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("datagen: cannot open " + path);
  DatagenManifest m;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    const size_t comma = line.find(',');
    if (comma == std::string::npos) continue;
    const std::string key = line.substr(0, comma);
    const std::string value = line.substr(comma + 1);
    if (key == "city") m.city = value;
    else if (key == "grid") m.grid = std::stoull(value);
    else if (key == "trips_per_day") m.trips_per_day = std::stoull(value);
    else if (key == "days") m.num_days = std::stoull(value);
    else if (key == "seed") m.seed = std::stoull(value);
    else if (key == "shards") m.shards = std::stoull(value);
    else if (key == "match") m.rematch_gps = value == "1";
    else if (key == "train") m.train_count = std::stoull(value);
    else if (key == "val") m.val_count = std::stoull(value);
    else if (key == "test") m.test_count = std::stoull(value);
  }
  return m;
}

// Shard paths in the layout deepod_datagen writes.
inline std::vector<std::string> ManifestShardPaths(const std::string& dir,
                                                   size_t shards) {
  std::vector<std::string> paths;
  paths.reserve(shards);
  for (size_t k = 0; k < shards; ++k) {
    paths.push_back(dir + "/shard-" + std::to_string(k) + ".trips");
  }
  return paths;
}

}  // namespace deepod::tools

#endif  // DEEPOD_TOOLS_DATAGEN_MANIFEST_H_
