#!/usr/bin/env python3
"""Compare a fresh BENCH-json run against a committed baseline.

The CI bench-regression job runs the short bench_serving / bench_nn_micro
streams on every PR and feeds the resulting JSON through this script
against the baselines committed at the repo root. Policy (documented in
CONTRIBUTING.md):

  - Records are matched by name. A matched record FAILS when it regresses
    by more than --threshold (default 0.25, i.e. 25%): throughput
    ('samples_per_sec', preferred because it is stream-length independent)
    dropping below baseline/(1+t), or, when only wall time is available,
    'wall_seconds' exceeding baseline*(1+t).
  - Records present only in the baseline (removed/renamed) or only in the
    current run (new) WARN but do not fail — refresh the baseline in the
    same PR instead.
  - Records matching an --ignore glob are skipped. The defaults cover the
    value-carrying records that reuse the wall_seconds field for something
    that is not a time: '*speedup*' and '*hit_rate*' (ratios) and '*mae*'
    (the quantised-serving error in seconds, bench_serving's
    serving/quant/<mode>/mae) — comparing those as throughput would flag
    an accuracy change as a perf regression or, worse, pass a real one.

Exit status: 1 if any matched record regressed, else 0.

Usage:
    bench_compare.py BASELINE.json CURRENT.json
        [--threshold 0.25] [--ignore GLOB ...]
"""

import argparse
import fnmatch
import json
import sys

# speedup/hit_rate/mae are ratio/error values; shed_rate/goodput are
# load-policy outcomes (how much an overload run was rejected) and
# availability is a fallback-policy outcome (how much of a cold shard's
# load the oracle tier answered) — none of them are machine-performance
# numbers a regression gate should compare. server/policy/* as a whole is
# the estimator comparison table (model vs oracle vs link-mean): its
# latency loops finish in microseconds (the oracle tier answers 400
# queries in ~150us), so wall-clock ratios there are timer noise; the
# steady/overload records already gate serving performance.
DEFAULT_IGNORES = ["*speedup*", "*hit_rate*", "*mae*", "*shed_rate*",
                   "*goodput*", "*availability*", "server/policy/*"]


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    records = {}
    for record in doc.get("records", []):
        records[record["name"]] = record
    return records


def compare_record(name, base, cur, threshold):
    """Returns (status, detail) with status in OK/SLOW/FAST/SKIP."""
    base_sps = base.get("samples_per_sec", 0)
    cur_sps = cur.get("samples_per_sec", 0)
    if base_sps > 0 and cur_sps > 0:
        ratio = base_sps / cur_sps  # >1 means current is slower
        detail = (f"{base_sps:12.1f} -> {cur_sps:12.1f} samples/s "
                  f"(x{ratio:.2f} time)")
    elif base.get("wall_seconds", 0) > 0 and cur.get("wall_seconds", 0) > 0:
        ratio = cur["wall_seconds"] / base["wall_seconds"]
        detail = (f"{base['wall_seconds']:12.6f} -> "
                  f"{cur['wall_seconds']:12.6f} s (x{ratio:.2f} time)")
    else:
        return "SKIP", "no comparable measurement (zero baseline)"
    if ratio > 1 + threshold:
        return "SLOW", detail
    if ratio < 1 / (1 + threshold):
        return "FAST", detail
    return "OK", detail


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", metavar="BASELINE.json")
    parser.add_argument("current", metavar="CURRENT.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fail when slower by more than this fraction "
                             "(default 0.25)")
    parser.add_argument("--ignore", nargs="*", default=DEFAULT_IGNORES,
                        metavar="GLOB",
                        help=f"name globs to skip (default {DEFAULT_IGNORES})")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    current = load_records(args.current)

    regressions = []
    warnings = []
    print(f"comparing {args.current} against baseline {args.baseline} "
          f"(threshold {args.threshold:.0%})")
    for name in sorted(baseline):
        if any(fnmatch.fnmatch(name, g) for g in args.ignore):
            continue
        if name not in current:
            warnings.append(f"missing from current run: {name}")
            continue
        status, detail = compare_record(name, baseline[name], current[name],
                                        args.threshold)
        print(f"  [{status:4s}] {name}: {detail}")
        if status == "SLOW":
            regressions.append(name)
    for name in sorted(set(current) - set(baseline)):
        if any(fnmatch.fnmatch(name, g) for g in args.ignore):
            continue
        warnings.append(f"new record (not in baseline): {name}")

    for warning in warnings:
        print(f"  WARNING: {warning}", file=sys.stderr)
    if regressions:
        print(f"FAIL: {len(regressions)} record(s) regressed beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        print("If the slowdown is expected (e.g. intentional trade-off), "
              "refresh the committed baseline in this PR and explain why "
              "in the PR description.", file=sys.stderr)
        return 1
    print(f"PASS: {len(baseline)} baseline records checked, "
          f"{len(warnings)} warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
