// deepod_server: the network front end. Loads a model artifact + road
// network into an EtaService (predict-only, same loading path as
// deepod_serve) and serves it over length-prefixed TCP with admission
// control and continuous batching (DESIGN.md "Network serving").
//
//   deepod_server --artifact model.artifact --network network.csv
//                 [--host H] [--port P] [--max-batch N] [--executors N]
//                 [--batch-threads N] [--queue-capacity N]
//                 [--tenants N] [--tenant-rate R] [--tenant-burst B]
//                 [--no-deadline-shed] [--quant MODE] [--kernel MODE]
//                 [--cache-capacity N] [--stats-json PATH]
//
// Prints "listening on HOST:PORT" once the socket is bound (port 0 binds
// an ephemeral port; scripts parse the line to discover it). SIGTERM and
// SIGINT trigger a graceful drain: stop accepting, answer every admitted
// request, close connections, then exit 0 — the shutdown contract the CI
// server-smoke job asserts. --stats-json writes the server+service obs
// registries (BENCH-json schema) on the way out.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "io/model_artifact.h"
#include "io/trip_io.h"
#include "nn/quant.h"
#include "nn/serialize.h"
#include "serve/eta_service.h"
#include "serve/server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

bool ParseKernelMode(const std::string& name, deepod::nn::KernelMode* out) {
  using deepod::nn::KernelMode;
  if (name == "legacy") *out = KernelMode::kLegacy;
  else if (name == "blocked") *out = KernelMode::kBlocked;
  else if (name == "vector") *out = KernelMode::kVector;
  else if (name == "simd") *out = KernelMode::kSimd;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepod;
  std::string artifact_path, network_path, stats_json_path;
  serve::EtaServiceOptions service_options;
  serve::net::ServerOptions server_options;
  const auto usage = [&argv] {
    std::fprintf(
        stderr,
        "usage: %s --artifact PATH --network PATH [--host H] [--port P]\n"
        "  [--max-batch N] [--executors N] [--batch-threads N]\n"
        "  [--queue-capacity N] [--tenants N] [--tenant-rate R]\n"
        "  [--tenant-burst B] [--no-deadline-shed]\n"
        "  [--quant none|fp16|int8] [--kernel legacy|blocked|vector|simd]\n"
        "  [--cache-capacity N] [--stats-json PATH]\n",
        argv[0]);
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--artifact" && i + 1 < argc) {
      artifact_path = argv[++i];
    } else if (flag == "--network" && i + 1 < argc) {
      network_path = argv[++i];
    } else if (flag == "--host" && i + 1 < argc) {
      server_options.host = argv[++i];
    } else if (flag == "--port" && i + 1 < argc) {
      server_options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (flag == "--max-batch" && i + 1 < argc) {
      server_options.max_batch = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--executors" && i + 1 < argc) {
      server_options.executors = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--batch-threads" && i + 1 < argc) {
      server_options.batch_threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--queue-capacity" && i + 1 < argc) {
      server_options.admission.queue_capacity =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--tenants" && i + 1 < argc) {
      server_options.admission.num_tenants =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--tenant-rate" && i + 1 < argc) {
      server_options.admission.tenant_rate = std::atof(argv[++i]);
    } else if (flag == "--tenant-burst" && i + 1 < argc) {
      server_options.admission.tenant_burst = std::atof(argv[++i]);
    } else if (flag == "--no-deadline-shed") {
      server_options.admission.deadline_shedding = false;
    } else if (flag == "--quant" && i + 1 < argc) {
      if (!nn::ParseQuantMode(argv[++i], &service_options.quant)) {
        std::fprintf(stderr, "unknown --quant mode '%s'\n", argv[i]);
        return 2;
      }
    } else if (flag == "--kernel" && i + 1 < argc) {
      nn::KernelMode mode;
      if (!ParseKernelMode(argv[++i], &mode)) {
        std::fprintf(stderr, "unknown --kernel mode '%s'\n", argv[i]);
        return 2;
      }
      service_options.kernel_mode = mode;
    } else if (flag == "--cache-capacity" && i + 1 < argc) {
      service_options.cache_capacity = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--stats-json" && i + 1 < argc) {
      stats_json_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (artifact_path.empty() || network_path.empty()) {
    std::fprintf(stderr, "--artifact and --network are required\n");
    return 2;
  }

  const road::RoadNetwork network = io::ReadNetworkCsv(network_path);
  std::unique_ptr<serve::EtaService> service;
  try {
    service = serve::EtaService::FromArtifact(artifact_path, network,
                                              service_options);
  } catch (const nn::SerializeError& e) {
    std::fprintf(stderr, "artifact load failed [%s]: %s\n",
                 nn::LoadErrorKindName(e.status().kind), e.what());
    return 1;
  }
  server_options.num_segments = network.num_segments();

  // Block SIGTERM/SIGINT before the server spawns its threads so every
  // thread inherits the blocked mask and delivery can only happen inside
  // the main thread's sigsuspend window below (no lost-wakeup race).
  sigset_t stop_set, old_mask;
  sigemptyset(&stop_set);
  sigaddset(&stop_set, SIGTERM);
  sigaddset(&stop_set, SIGINT);
  sigprocmask(SIG_BLOCK, &stop_set, &old_mask);
  struct sigaction sa{};
  sa.sa_handler = HandleStop;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  serve::net::DeepOdServer server(*service, server_options);
  try {
    server.Start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "server start failed: %s\n", e.what());
    return 1;
  }
  std::printf("listening on %s:%u\n", server_options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  sigset_t wait_mask = old_mask;
  sigdelset(&wait_mask, SIGTERM);
  sigdelset(&wait_mask, SIGINT);
  while (g_stop == 0) sigsuspend(&wait_mask);

  std::printf("draining...\n");
  std::fflush(stdout);
  server.Shutdown();
  if (!stats_json_path.empty()) {
    std::FILE* f = std::fopen(stats_json_path.c_str(), "w");
    if (f != nullptr) {
      const std::string json = server.ExportStatsJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
  }
  std::printf("shutdown complete\n");
  return 0;
}
