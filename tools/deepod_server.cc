// deepod_server: the network front end. Loads a model artifact + road
// network into an EtaService (predict-only, same loading path as
// deepod_serve) and serves it over length-prefixed TCP with admission
// control and continuous batching (DESIGN.md "Network serving").
//
//   deepod_server --artifact model.artifact --network network.csv
//                 [--host H] [--port P] [--max-batch N] [--executors N]
//                 [--batch-threads N] [--queue-capacity N]
//                 [--tenants N] [--tenant-rate R] [--tenant-burst B]
//                 [--no-deadline-shed] [--quant MODE] [--kernel MODE]
//                 [--cache-capacity N] [--stats-json PATH]
//                 [--watch] [--poll-ms N]
//                 [--live-speed] [--publish-ms N] [--speed-grid-m X]
//                 [--speed-window-s X]
//                 [--drift-window N] [--drift-trigger X]
//   deepod_server --fleet fleet.csv [shared flags as above]
//
// Fleet mode (--fleet, mutually exclusive with --artifact/--network) serves
// every city in the manifest from one process: requests route by their wire
// network_id, each warm shard runs its own EtaService + (with --watch) its
// own per-city hot-swap reloader, and a shard whose artifact is missing or
// corrupt serves from its OD-oracle fallback tier until a loadable artifact
// appears ("fleet: activated CITY" is printed on each cold->warm
// transition). --live-speed and --drift-trigger are single-city plumbing
// and are rejected with --fleet.
//
// Prints "listening on HOST:PORT" once the socket is bound (port 0 binds
// an ephemeral port; scripts parse the line to discover it). SIGTERM and
// SIGINT trigger a graceful drain: stop accepting, answer every admitted
// request, close connections, then exit 0 — the shutdown contract the CI
// server-smoke job asserts. --stats-json writes the unified stats document
// (serve::ExportStatsJson — identical to the wire stats frame) on the way
// out.
//
// Live serving (DESIGN.md "Live serving"):
//   --watch        polls the artifact path and hot-swaps a rewritten
//                  artifact into the running service with zero downtime
//                  (publish new artifacts with an atomic rename into place;
//                  a corrupt artifact is rejected and the old model keeps
//                  serving).
//   --live-speed   stands up a RollingSpeedField fed by ObserveTrip frames;
//                  a publish ticker folds ingested observations into served
//                  matrices every --publish-ms and bumps the service epoch.
//   --drift-trigger X  prints a retrain-trigger line when the rolling MAE
//                  of predictions vs observed actuals crosses X seconds.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include <vector>

#include "cli_flags.h"
#include "io/model_artifact.h"
#include "io/trip_io.h"
#include "nn/quant.h"
#include "nn/serialize.h"
#include "serve/drift_monitor.h"
#include "serve/eta_service.h"
#include "serve/fleet_router.h"
#include "serve/model_reloader.h"
#include "serve/server/server.h"
#include "sim/rolling_speed_field.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace deepod;
  std::string artifact_path, network_path, fleet_path, stats_json_path;
  serve::EtaServiceOptions service_options;
  serve::net::ServerOptions server_options;
  bool watch = false;
  size_t poll_ms = 200;
  bool live_speed = false;
  size_t publish_ms = 1000;
  double speed_grid_m = 200.0;    // sim::DatasetConfig::speed_grid_m default
  double speed_window_s = 3600.0;
  size_t drift_window = 256;
  double drift_trigger = 0.0;
  const auto usage = [&argv] {
    std::fprintf(
        stderr,
        "usage: %s (--artifact PATH --network PATH | --fleet PATH)\n"
        "  [--host H] [--port P]\n"
        "  [--max-batch N] [--executors N] [--batch-threads N]\n"
        "  [--queue-capacity N] [--tenants N] [--tenant-rate R]\n"
        "  [--tenant-burst B] [--no-deadline-shed]\n"
        "  [%s] [%s]\n"
        "  [--cache-capacity N] [--stats-json PATH]\n"
        "  [--watch] [--poll-ms N]\n"
        "  [--live-speed] [--publish-ms N] [--speed-grid-m X]\n"
        "  [--speed-window-s X] [--drift-window N] [--drift-trigger X]\n",
        argv[0], tools::cli::FlagCursor::QuantHelp(),
        tools::cli::FlagCursor::KernelHelp());
    return 2;
  };
  tools::cli::FlagCursor flags(argc, argv);
  while (flags.Next()) {
    const std::string& flag = flags.flag();
    if (flag == "--artifact") {
      if (!flags.StringValue(&artifact_path)) return 2;
    } else if (flag == "--network") {
      if (!flags.StringValue(&network_path)) return 2;
    } else if (flag == "--fleet") {
      if (!flags.StringValue(&fleet_path)) return 2;
    } else if (flag == "--host") {
      if (!flags.StringValue(&server_options.host)) return 2;
    } else if (flag == "--port") {
      if (!flags.PortValue(&server_options.port)) return 2;
    } else if (flag == "--max-batch") {
      if (!flags.SizeValue(&server_options.max_batch)) return 2;
    } else if (flag == "--executors") {
      if (!flags.SizeValue(&server_options.executors)) return 2;
    } else if (flag == "--batch-threads") {
      if (!flags.SizeValue(&server_options.batch_threads)) return 2;
    } else if (flag == "--queue-capacity") {
      if (!flags.SizeValue(&server_options.admission.queue_capacity)) return 2;
    } else if (flag == "--tenants") {
      if (!flags.SizeValue(&server_options.admission.num_tenants)) return 2;
    } else if (flag == "--tenant-rate") {
      if (!flags.DoubleValue(&server_options.admission.tenant_rate)) return 2;
    } else if (flag == "--tenant-burst") {
      if (!flags.DoubleValue(&server_options.admission.tenant_burst)) return 2;
    } else if (flag == "--no-deadline-shed") {
      server_options.admission.deadline_shedding = false;
    } else if (flag == "--quant") {
      if (!flags.QuantValue(&service_options.quant)) return 2;
    } else if (flag == "--kernel") {
      if (!flags.KernelValue(&service_options.kernel_mode)) return 2;
    } else if (flag == "--cache-capacity") {
      if (!flags.SizeValue(&service_options.cache_capacity)) return 2;
    } else if (flag == "--stats-json") {
      if (!flags.StringValue(&stats_json_path)) return 2;
    } else if (flag == "--watch") {
      watch = true;
    } else if (flag == "--poll-ms") {
      if (!flags.SizeValue(&poll_ms)) return 2;
    } else if (flag == "--live-speed") {
      live_speed = true;
    } else if (flag == "--publish-ms") {
      if (!flags.SizeValue(&publish_ms)) return 2;
    } else if (flag == "--speed-grid-m") {
      if (!flags.DoubleValue(&speed_grid_m)) return 2;
    } else if (flag == "--speed-window-s") {
      if (!flags.DoubleValue(&speed_window_s)) return 2;
    } else if (flag == "--drift-window") {
      if (!flags.SizeValue(&drift_window)) return 2;
    } else if (flag == "--drift-trigger") {
      if (!flags.DoubleValue(&drift_trigger)) return 2;
    } else {
      return usage();
    }
  }
  const bool fleet_mode = !fleet_path.empty();
  if (fleet_mode && (!artifact_path.empty() || !network_path.empty())) {
    std::fprintf(stderr, "--fleet excludes --artifact/--network\n");
    return 2;
  }
  if (!fleet_mode && (artifact_path.empty() || network_path.empty())) {
    std::fprintf(stderr, "--artifact and --network are required "
                         "(or --fleet)\n");
    return 2;
  }
  if (fleet_mode && (live_speed || drift_trigger > 0.0)) {
    std::fprintf(stderr,
                 "--live-speed/--drift-trigger are single-city only and "
                 "cannot be combined with --fleet\n");
    return 2;
  }

  std::unique_ptr<serve::FleetRouter> fleet;
  road::RoadNetwork network;  // single mode only
  std::unique_ptr<serve::EtaService> service;
  std::shared_ptr<const serve::ServingState> initial_state;
  if (fleet_mode) {
    try {
      std::vector<serve::FleetEntry> entries =
          serve::ReadFleetManifest(fleet_path);
      serve::FleetRouterOptions fleet_options;
      fleet_options.service = service_options;
      fleet_options.watch = watch;
      fleet_options.reloader.poll_interval =
          std::chrono::milliseconds(poll_ms);
      fleet_options.activation_poll = std::chrono::milliseconds(poll_ms);
      fleet_options.on_activate = [](const serve::FleetShard& shard) {
        std::printf("fleet: activated %s (network_id %u)\n",
                    shard.name().c_str(),
                    static_cast<unsigned>(shard.network_id()));
        std::fflush(stdout);
      };
      fleet = std::make_unique<serve::FleetRouter>(std::move(entries),
                                                   fleet_options);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fleet load failed: %s\n", e.what());
      return 1;
    }
    std::printf("fleet: %zu cities, %zu warm\n", fleet->shards().size(),
                fleet->WarmCount());
    for (const auto& shard : fleet->shards()) {
      std::printf("fleet: %s network_id=%u %s policy=%s\n",
                  shard->name().c_str(),
                  static_cast<unsigned>(shard->network_id()),
                  shard->warm() ? "warm" : "cold",
                  serve::FallbackPolicyName(shard->policy()));
    }
    // Per-shard segment validation; the global bound stays off.
    server_options.num_segments = 0;
  } else {
    network = io::ReadNetworkCsv(network_path);
    try {
      service = serve::EtaService::FromArtifact(artifact_path, network,
                                                service_options);
    } catch (const nn::SerializeError& e) {
      std::fprintf(stderr, "artifact load failed [%s]: %s\n",
                   nn::LoadErrorKindName(e.status().kind), e.what());
      return 1;
    }
    server_options.num_segments = network.num_segments();

    // The construction epoch, pinned for the process lifetime: the rolling
    // field's baseline points into this bundle's frozen speed field, so the
    // bundle must survive hot swaps that would otherwise free it.
    initial_state = service->state();
  }

  std::unique_ptr<sim::RollingSpeedField> rolling;
  if (live_speed) {
    const sim::SpeedProvider* baseline =
        initial_state->bundle != nullptr ? initial_state->bundle->speed.get()
                                         : nullptr;
    const double snapshot_seconds =
        baseline != nullptr ? baseline->snapshot_seconds()
                            : initial_state->bundle->config.slot_seconds;
    sim::RollingSpeedField::Options rolling_options;
    rolling_options.window_seconds = speed_window_s;
    rolling = std::make_unique<sim::RollingSpeedField>(
        network, speed_grid_m, snapshot_seconds, baseline, rolling_options);
    // Point the serving model at the live field (its empty table falls back
    // to the artifact's frozen matrices, so behaviour is unchanged until
    // the first publish) and invalidate what was cached under the frozen
    // provider.
    initial_state->model->SetSpeedProvider(rolling.get());
    service->BumpEpoch();
    std::printf("live speed field: %zux%zu grid, %.0fs snapshots, %.0fs "
                "window\n",
                rolling->rows(), rolling->cols(), snapshot_seconds,
                speed_window_s);
  }

  serve::DriftMonitorOptions drift_options;
  drift_options.window = drift_window;
  drift_options.trigger_mae = drift_trigger;
  serve::DriftMonitor drift(drift_options, [](double mae) {
    std::printf("drift: retrain trigger fired (rolling MAE %.3f s)\n", mae);
    std::fflush(stdout);
  });

  std::unique_ptr<serve::ModelReloader> reloader;
  if (watch && !fleet_mode) {
    serve::ModelReloaderOptions reloader_options;
    reloader_options.poll_interval = std::chrono::milliseconds(poll_ms);
    reloader_options.artifact.quant = service_options.quant;
    sim::RollingSpeedField* rolling_ptr = rolling.get();
    const std::string log_path = artifact_path;
    reloader = std::make_unique<serve::ModelReloader>(
        *service, artifact_path, network, reloader_options,
        [rolling_ptr, log_path](serve::ServingState& state) {
          // Swapped-in models serve live speeds from their first request.
          if (rolling_ptr != nullptr) {
            state.model->SetSpeedProvider(rolling_ptr);
          }
          // Runs on the watcher thread after a successful load+validate,
          // immediately before the epoch flip — the operator-visible (and
          // CI-greppable) record that a new artifact went live.
          std::printf("reloaded %s\n", log_path.c_str());
          std::fflush(stdout);
        });
    std::printf("watching %s (poll %zums)\n", artifact_path.c_str(), poll_ms);
  }

  server_options.live.rolling_field = rolling.get();
  server_options.live.drift = &drift;
  server_options.live.reloader = reloader.get();

  // Block SIGTERM/SIGINT before the server spawns its threads so every
  // thread inherits the blocked mask and delivery can only happen inside
  // the main thread's sigsuspend window below (no lost-wakeup race).
  sigset_t stop_set, old_mask;
  sigemptyset(&stop_set);
  sigaddset(&stop_set, SIGTERM);
  sigaddset(&stop_set, SIGINT);
  sigprocmask(SIG_BLOCK, &stop_set, &old_mask);
  struct sigaction sa{};
  sa.sa_handler = HandleStop;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  std::unique_ptr<serve::net::DeepOdServer> server;
  if (fleet_mode) {
    server = std::make_unique<serve::net::DeepOdServer>(*fleet,
                                                        server_options);
  } else {
    server = std::make_unique<serve::net::DeepOdServer>(*service,
                                                        server_options);
  }
  try {
    server->Start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "server start failed: %s\n", e.what());
    return 1;
  }
  std::printf("listening on %s:%u\n", server_options.host.c_str(),
              static_cast<unsigned>(server->port()));
  std::fflush(stdout);

  // Publish ticker: fold ingested observations into served matrices and
  // bump the cache generation whenever anything new arrived.
  std::thread publisher;
  std::mutex publish_mu;
  std::condition_variable publish_cv;
  bool publish_stop = false;
  if (rolling != nullptr) {
    publisher = std::thread([&] {
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(publish_mu);
          publish_cv.wait_for(lock, std::chrono::milliseconds(publish_ms),
                              [&] { return publish_stop; });
          if (publish_stop) return;
        }
        if (rolling->Publish() > 0) service->BumpEpoch();
      }
    });
  }

  sigset_t wait_mask = old_mask;
  sigdelset(&wait_mask, SIGTERM);
  sigdelset(&wait_mask, SIGINT);
  while (g_stop == 0) sigsuspend(&wait_mask);

  std::printf("draining...\n");
  std::fflush(stdout);
  if (publisher.joinable()) {
    {
      std::lock_guard<std::mutex> lock(publish_mu);
      publish_stop = true;
    }
    publish_cv.notify_all();
    publisher.join();
  }
  if (reloader != nullptr) reloader->Stop();
  if (fleet != nullptr) fleet->Stop();
  server->Shutdown();
  if (!stats_json_path.empty()) {
    std::FILE* f = std::fopen(stats_json_path.c_str(), "w");
    if (f != nullptr) {
      const std::string json = server->ExportStatsJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
  }
  std::printf("shutdown complete\n");
  return 0;
}
