// deepod_serve: stands an EtaService up from a model artifact + road
// network alone (no training dataset, traffic process or trajectory store
// in memory) and optionally replays a golden-query file against it.
//
//   deepod_serve --artifact model.artifact --network network.csv
//                [--check golden.csv] [--tolerance X] [--quant MODE]
//                [--kernel MODE] [--stats]
//
// --check replays every query of a deepod_train --golden file through
// EtaService::Estimate twice (miss then cache hit) and compares both
// answers against the recorded prediction; any mismatch fails the run.
// This is the cross-process round-trip gate CI runs. Without --tolerance
// the comparison is bit-for-bit — the right gate for an fp64 artifact
// served on the tier the goldens were recorded with. --tolerance X accepts
// |got - expected| <= X * max(1, |expected|) instead, which is what a
// quantised (--quant int8/fp16) or kSimd-tier (--kernel simd) replay
// needs: both are value-tolerance contracts, not bit-identity ones.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cli_flags.h"
#include "golden_file.h"
#include "io/model_artifact.h"
#include "io/trip_io.h"
#include "nn/quant.h"
#include "nn/serialize.h"
#include "serve/eta_service.h"

int main(int argc, char** argv) {
  using namespace deepod;
  std::string artifact_path, network_path, check_path;
  bool stats = false;
  double tolerance = 0.0;  // 0 = bit-for-bit
  serve::EtaServiceOptions options;
  const auto usage = [&argv] {
    std::fprintf(stderr,
                 "usage: %s --artifact PATH --network PATH "
                 "[--check golden.csv] [--tolerance X] "
                 "[--quant none|fp16|int8] "
                 "[--kernel legacy|blocked|vector|simd] [--stats]\n",
                 argv[0]);
    return 2;
  };
  tools::cli::FlagCursor flags(argc, argv);
  while (flags.Next()) {
    const std::string& flag = flags.flag();
    if (flag == "--artifact") {
      if (!flags.StringValue(&artifact_path)) return 2;
    } else if (flag == "--network") {
      if (!flags.StringValue(&network_path)) return 2;
    } else if (flag == "--check") {
      if (!flags.StringValue(&check_path)) return 2;
    } else if (flag == "--tolerance") {
      if (!flags.ToleranceValue(&tolerance)) return 2;
    } else if (flag == "--quant") {
      if (!flags.QuantValue(&options.quant)) return 2;
    } else if (flag == "--kernel") {
      if (!flags.KernelValue(&options.kernel_mode)) return 2;
    } else if (flag == "--stats") {
      stats = true;
    } else {
      return usage();
    }
  }
  if (artifact_path.empty() || network_path.empty()) {
    std::fprintf(stderr, "--artifact and --network are required\n");
    return 2;
  }

  const road::RoadNetwork network = io::ReadNetworkCsv(network_path);
  std::unique_ptr<serve::EtaService> service;
  try {
    service = serve::EtaService::FromArtifact(artifact_path, network, options);
  } catch (const nn::SerializeError& e) {
    std::fprintf(stderr, "artifact load failed [%s]: %s\n",
                 nn::LoadErrorKindName(e.status().kind), e.what());
    return 1;
  }
  std::printf("serving %s against %zu-segment network (quant: %s)\n",
              artifact_path.c_str(), network.num_segments(),
              nn::QuantModeName(options.quant));

  int exit_code = 0;
  if (!check_path.empty()) {
    std::vector<tools::GoldenQuery> golden;
    if (!tools::ReadGoldenFile(check_path, &golden)) {
      std::fprintf(stderr, "cannot parse %s\n", check_path.c_str());
      return 1;
    }
    const auto matches = [tolerance](double got, double expected) {
      if (tolerance == 0.0) {
        return std::memcmp(&got, &expected, sizeof(double)) == 0;
      }
      return std::abs(got - expected) <=
             tolerance * std::max(1.0, std::abs(expected));
    };
    size_t mismatches = 0;
    for (const auto& q : golden) {
      const double first = service->Estimate(q.od);   // cache miss path
      const double second = service->Estimate(q.od);  // cache hit path
      if (!matches(first, q.prediction) || !matches(second, q.prediction)) {
        if (++mismatches <= 5) {
          std::fprintf(stderr,
                       "mismatch: od %zu->%zu t=%.1f expected %a got %a/%a\n",
                       q.od.origin_segment, q.od.dest_segment,
                       q.od.departure_time, q.prediction, first, second);
        }
      }
    }
    std::printf("check: %zu queries, %zu mismatches (tolerance %g) -> %s\n",
                golden.size(), mismatches, tolerance,
                mismatches == 0 ? "PASS" : "FAIL");
    if (mismatches != 0 || golden.empty()) exit_code = 1;
  }
  if (stats) {
    std::printf("%s\n", service->ExportJson().c_str());
  }
  return exit_code;
}
