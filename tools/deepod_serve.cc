// deepod_serve: stands an EtaService up from a model artifact + road
// network alone (no training dataset, traffic process or trajectory store
// in memory) and optionally replays a golden-query file against it.
//
//   deepod_serve --artifact model.artifact --network network.csv
//                [--check golden.csv] [--tolerance X] [--quant MODE]
//                [--kernel MODE] [--stats]
//
// --check replays every query of a deepod_train --golden file through
// EtaService::Estimate twice (miss then cache hit) and compares both
// answers against the recorded prediction; any mismatch fails the run.
// This is the cross-process round-trip gate CI runs. Without --tolerance
// the comparison is bit-for-bit — the right gate for an fp64 artifact
// served on the tier the goldens were recorded with. --tolerance X accepts
// |got - expected| <= X * max(1, |expected|) instead, which is what a
// quantised (--quant int8/fp16) or kSimd-tier (--kernel simd) replay
// needs: both are value-tolerance contracts, not bit-identity ones.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "io/model_artifact.h"
#include "io/trip_io.h"
#include "nn/quant.h"
#include "nn/serialize.h"
#include "serve/eta_service.h"

namespace {

struct GoldenQuery {
  deepod::traj::OdInput od;
  double prediction = 0.0;
};

// Parses a deepod_train --golden file (hex-float fields, header line).
bool ReadGolden(const std::string& path, std::vector<GoldenQuery>* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char line[512];
  bool header = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (header) {
      header = false;
      continue;
    }
    GoldenQuery q;
    unsigned long long origin = 0, dest = 0;
    int weather = 0;
    // %la parses both hex-float and decimal doubles.
    if (std::sscanf(line, "%llu,%llu,%la,%la,%la,%d,%la", &origin, &dest,
                    &q.od.origin_ratio, &q.od.dest_ratio,
                    &q.od.departure_time, &weather, &q.prediction) != 7) {
      std::fclose(f);
      return false;
    }
    q.od.origin_segment = static_cast<size_t>(origin);
    q.od.dest_segment = static_cast<size_t>(dest);
    q.od.weather_type = weather;
    out->push_back(q);
  }
  std::fclose(f);
  return true;
}

bool ParseKernelMode(const std::string& name, deepod::nn::KernelMode* out) {
  using deepod::nn::KernelMode;
  if (name == "legacy") *out = KernelMode::kLegacy;
  else if (name == "blocked") *out = KernelMode::kBlocked;
  else if (name == "vector") *out = KernelMode::kVector;
  else if (name == "simd") *out = KernelMode::kSimd;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepod;
  std::string artifact_path, network_path, check_path;
  bool stats = false;
  double tolerance = 0.0;  // 0 = bit-for-bit
  serve::EtaServiceOptions options;
  const auto usage = [&argv] {
    std::fprintf(stderr,
                 "usage: %s --artifact PATH --network PATH "
                 "[--check golden.csv] [--tolerance X] "
                 "[--quant none|fp16|int8] "
                 "[--kernel legacy|blocked|vector|simd] [--stats]\n",
                 argv[0]);
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--artifact" && i + 1 < argc) {
      artifact_path = argv[++i];
    } else if (flag == "--network" && i + 1 < argc) {
      network_path = argv[++i];
    } else if (flag == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (flag == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
      if (!(tolerance >= 0.0)) {
        std::fprintf(stderr, "--tolerance must be >= 0\n");
        return 2;
      }
    } else if (flag == "--quant" && i + 1 < argc) {
      if (!nn::ParseQuantMode(argv[++i], &options.quant)) {
        std::fprintf(stderr, "unknown --quant mode '%s'\n", argv[i]);
        return 2;
      }
    } else if (flag == "--kernel" && i + 1 < argc) {
      nn::KernelMode mode;
      if (!ParseKernelMode(argv[++i], &mode)) {
        std::fprintf(stderr, "unknown --kernel mode '%s'\n", argv[i]);
        return 2;
      }
      options.kernel_mode = mode;
    } else if (flag == "--stats") {
      stats = true;
    } else {
      return usage();
    }
  }
  if (artifact_path.empty() || network_path.empty()) {
    std::fprintf(stderr, "--artifact and --network are required\n");
    return 2;
  }

  const road::RoadNetwork network = io::ReadNetworkCsv(network_path);
  std::unique_ptr<serve::EtaService> service;
  try {
    service = serve::EtaService::FromArtifact(artifact_path, network, options);
  } catch (const nn::SerializeError& e) {
    std::fprintf(stderr, "artifact load failed [%s]: %s\n",
                 nn::LoadErrorKindName(e.status().kind), e.what());
    return 1;
  }
  std::printf("serving %s against %zu-segment network (quant: %s)\n",
              artifact_path.c_str(), network.num_segments(),
              nn::QuantModeName(options.quant));

  int exit_code = 0;
  if (!check_path.empty()) {
    std::vector<GoldenQuery> golden;
    if (!ReadGolden(check_path, &golden)) {
      std::fprintf(stderr, "cannot parse %s\n", check_path.c_str());
      return 1;
    }
    const auto matches = [tolerance](double got, double expected) {
      if (tolerance == 0.0) {
        return std::memcmp(&got, &expected, sizeof(double)) == 0;
      }
      return std::abs(got - expected) <=
             tolerance * std::max(1.0, std::abs(expected));
    };
    size_t mismatches = 0;
    for (const auto& q : golden) {
      const double first = service->Estimate(q.od);   // cache miss path
      const double second = service->Estimate(q.od);  // cache hit path
      if (!matches(first, q.prediction) || !matches(second, q.prediction)) {
        if (++mismatches <= 5) {
          std::fprintf(stderr,
                       "mismatch: od %zu->%zu t=%.1f expected %a got %a/%a\n",
                       q.od.origin_segment, q.od.dest_segment,
                       q.od.departure_time, q.prediction, first, second);
        }
      }
    }
    std::printf("check: %zu queries, %zu mismatches (tolerance %g) -> %s\n",
                golden.size(), mismatches, tolerance,
                mismatches == 0 ? "PASS" : "FAIL");
    if (mismatches != 0 || golden.empty()) exit_code = 1;
  }
  if (stats) {
    std::printf("%s\n", service->ExportJson().c_str());
  }
  return exit_code;
}
