#!/usr/bin/env python3
"""Validate the shared BENCH-json record schema.

Every machine-readable measurement file in this repo uses one schema,
emitted either by bench::WriteBenchJson / the bench_nn_micro collector or
by obs::Registry::ExportJson (e.g. the EtaService stats export). Current
emitters: BENCH_table5.json (bench_table5_efficiency, plus the datagen/*
data-plane records merged in by bench_datagen), BENCH_table6.json
(bench_table6_scalability: per-(method, fraction) records with
wall_seconds = training time and value = test MAPE), BENCH_serving.json /
BENCH_serving_stats.json (bench_serving) and BENCH_nn_micro.json
(bench_nn_micro):

    {
      "hardware_concurrency": <int>,
      "records": [
        {"name": str, "wall_seconds": num, "threads": int >= 1,
         // optional, omitted when not measured:
         "samples_per_sec": num > 0, "count": num >= 0, "value": num,
         "p50_ms": num >= 0, "p95_ms": num >= 0, "p99_ms": num >= 0},
        ...
      ]
    }

Usage:
    validate_bench_json.py FILE [FILE ...]
        [--require NAME ...]          # record names that must be present
        [--require-prefix PREFIX ...] # at least one record per prefix
        [--allow-empty]               # permit an empty records list

Exits non-zero with a message naming the offending file/record on the
first violation. Shared by the serving-smoke and bench-regression CI jobs.
"""

import argparse
import json
import sys

OPTIONAL_NUMERIC_FIELDS = ("samples_per_sec", "count", "value",
                           "p50_ms", "p95_ms", "p99_ms")
KNOWN_FIELDS = {"name", "wall_seconds", "threads", *OPTIONAL_NUMERIC_FIELDS}


class ValidationError(Exception):
    pass


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_record(record, where):
    if not isinstance(record, dict):
        raise ValidationError(f"{where}: record is not an object")
    name = record.get("name")
    if not isinstance(name, str) or not name:
        raise ValidationError(f"{where}: missing or empty 'name'")
    where = f"{where} ({name!r})"
    if not is_number(record.get("wall_seconds")):
        raise ValidationError(f"{where}: 'wall_seconds' must be a number")
    if record["wall_seconds"] < 0:
        raise ValidationError(f"{where}: 'wall_seconds' must be >= 0")
    threads = record.get("threads")
    if not isinstance(threads, int) or isinstance(threads, bool) or threads < 1:
        raise ValidationError(f"{where}: 'threads' must be an int >= 1")
    for field in OPTIONAL_NUMERIC_FIELDS:
        if field in record and not is_number(record[field]):
            raise ValidationError(f"{where}: '{field}' must be a number")
    if "samples_per_sec" in record and record["samples_per_sec"] <= 0:
        raise ValidationError(f"{where}: 'samples_per_sec' must be > 0")
    for field in ("count", "p50_ms", "p95_ms", "p99_ms"):
        if field in record and record[field] < 0:
            raise ValidationError(f"{where}: '{field}' must be >= 0")
    percentiles = [record.get(p) for p in ("p50_ms", "p95_ms", "p99_ms")]
    if all(p is not None for p in percentiles):
        if not (percentiles[0] <= percentiles[1] <= percentiles[2]):
            raise ValidationError(
                f"{where}: percentiles must be monotone "
                f"(p50 {percentiles[0]} <= p95 {percentiles[1]} "
                f"<= p99 {percentiles[2]})")
    unknown = set(record) - KNOWN_FIELDS
    if unknown:
        raise ValidationError(
            f"{where}: unknown fields {sorted(unknown)} "
            "(extend the schema in src/obs/metrics.h and this validator "
            "together)")
    return name


def validate_file(path, args):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            raise ValidationError(f"{path}: invalid JSON: {e}") from e
    if not isinstance(doc, dict):
        raise ValidationError(f"{path}: top level is not an object")
    hc = doc.get("hardware_concurrency")
    if not isinstance(hc, int) or isinstance(hc, bool) or hc < 0:
        raise ValidationError(
            f"{path}: 'hardware_concurrency' must be an int >= 0")
    records = doc.get("records")
    if not isinstance(records, list):
        raise ValidationError(f"{path}: 'records' must be a list")
    if not records and not args.allow_empty:
        raise ValidationError(f"{path}: no records emitted")
    names = []
    for i, record in enumerate(records):
        names.append(validate_record(record, f"{path}: records[{i}]"))
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        print(f"{path}: WARNING: duplicate record names {sorted(dupes)}",
              file=sys.stderr)
    for required in args.require:
        if required not in names:
            raise ValidationError(f"{path}: missing required record "
                                  f"{required!r}")
    for prefix in args.require_prefix:
        if not any(n.startswith(prefix) for n in names):
            raise ValidationError(
                f"{path}: no record with required prefix {prefix!r}")
    print(f"{path}: OK ({len(records)} records)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", metavar="FILE")
    parser.add_argument("--require", nargs="*", default=[], metavar="NAME")
    parser.add_argument("--require-prefix", nargs="*", default=[],
                        metavar="PREFIX")
    parser.add_argument("--allow-empty", action="store_true")
    args = parser.parse_args()
    try:
        for path in args.files:
            validate_file(path, args)
    except ValidationError as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    except OSError as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
