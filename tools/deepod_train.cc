// deepod_train: trains a DeepOD model on a simulated city and emits a
// self-contained serving artifact next to everything a separate serving
// process needs:
//
//   <out>/model.artifact  config + model state + frozen speed field
//   <out>/network.csv     the road network (io::WriteNetworkCsv)
//   <out>/golden.csv      (--golden N) N test queries with this process's
//                         predictions, hex-float encoded so a replay can be
//                         compared bit-for-bit (see deepod_serve --check)
//   <out>/model.<mode>.artifact  (--quant MODE) the same artifact with its
//                         eligible weights stored quantised (fp16 or int8,
//                         serialize-v3); replay it with deepod_serve
//                         --tolerance, not bit-for-bit
//
// The defaults mirror the test suite's tiny dataset so a full
// train->save->serve round trip finishes in CI time.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/deepod_config.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "io/model_artifact.h"
#include "nn/quant.h"
#include "io/trip_io.h"
#include "sim/dataset.h"
#include "sim/snapshot_speed_field.h"

namespace {

struct Args {
  std::string out = ".";
  size_t scale = 16;
  int epochs = 1;
  size_t grid = 6;
  size_t trips_per_day = 12;
  size_t num_days = 15;
  uint64_t seed = 17;
  size_t threads = 1;
  size_t golden = 0;
  std::string checkpoint;  // optional: also write a resumable checkpoint
  // optional: also write <out>/model.<mode>.artifact with quantised weights
  deepod::nn::QuantMode quant = deepod::nn::QuantMode::kNone;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--out DIR] [--scale N] [--epochs N] [--grid N]\n"
      "          [--trips-per-day N] [--days N] [--seed N] [--threads N]\n"
      "          [--golden N] [--checkpoint PATH] [--quant fp16|int8]\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--out" && (v = value())) {
      args->out = v;
    } else if (flag == "--scale" && (v = value())) {
      args->scale = std::strtoull(v, nullptr, 10);
    } else if (flag == "--epochs" && (v = value())) {
      args->epochs = std::atoi(v);
    } else if (flag == "--grid" && (v = value())) {
      args->grid = std::strtoull(v, nullptr, 10);
    } else if (flag == "--trips-per-day" && (v = value())) {
      args->trips_per_day = std::strtoull(v, nullptr, 10);
    } else if (flag == "--days" && (v = value())) {
      args->num_days = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed" && (v = value())) {
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--threads" && (v = value())) {
      args->threads = std::strtoull(v, nullptr, 10);
    } else if (flag == "--golden" && (v = value())) {
      args->golden = std::strtoull(v, nullptr, 10);
    } else if (flag == "--checkpoint" && (v = value())) {
      args->checkpoint = v;
    } else if (flag == "--quant" && (v = value())) {
      if (!deepod::nn::ParseQuantMode(v, &args->quant)) {
        std::fprintf(stderr, "unknown --quant mode '%s'\n", v);
        return false;
      }
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepod;
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  sim::DatasetConfig dataset_config;
  dataset_config.city = road::XianSimConfig();
  dataset_config.city.rows = args.grid;
  dataset_config.city.cols = args.grid;
  dataset_config.trips_per_day = args.trips_per_day;
  dataset_config.num_days = args.num_days;
  dataset_config.seed = args.seed;
  std::printf("building dataset (%zux%zu grid, %zu days)...\n", args.grid,
              args.grid, args.num_days);
  const sim::Dataset dataset = sim::BuildDataset(dataset_config);
  std::printf("dataset: %zu train / %zu val / %zu test trips, %zu segments\n",
              dataset.train.size(), dataset.validation.size(),
              dataset.test.size(), dataset.network.num_segments());

  core::DeepOdConfig config = core::DeepOdConfig().Scaled(args.scale);
  config.epochs = args.epochs;
  config.batch_size = 8;
  config.num_threads = args.threads;

  core::DeepOdModel model(config, dataset);
  core::DeepOdTrainer trainer(model, dataset);
  const double best_mae = trainer.Train();
  std::printf("trained %d epoch(s), %zu steps, validation MAE %.3f s\n",
              config.epochs, trainer.steps_taken(), best_mae);

  if (!args.checkpoint.empty()) {
    trainer.SaveCheckpoint(args.checkpoint);
    std::printf("checkpoint: %s\n", args.checkpoint.c_str());
  }

  // Freeze the speed field over the window every test query falls in, so
  // serving from the artifact reproduces the training process's external
  // features exactly.
  std::unique_ptr<sim::SnapshotSpeedField> speed;
  if (dataset.speed_matrices != nullptr && !dataset.test.empty()) {
    double begin = dataset.test.front().od.departure_time;
    double end = begin;
    for (const auto& trip : dataset.test) {
      begin = std::min(begin, trip.od.departure_time);
      end = std::max(end, trip.od.departure_time);
    }
    speed = std::make_unique<sim::SnapshotSpeedField>(
        sim::SnapshotSpeedField::Capture(*dataset.speed_matrices, begin, end));
    std::printf("speed field: %zu snapshots of %zux%zu\n",
                speed->snapshots().size(), speed->rows(), speed->cols());
  }

  const std::string artifact_path = args.out + "/model.artifact";
  io::WriteModelArtifact(artifact_path, model, speed.get());
  if (args.quant != nn::QuantMode::kNone) {
    // The fp64 artifact above stays the golden-replay source of truth; the
    // quantised sibling is the deployment variant.
    const std::string quant_path = args.out + "/model." +
                                   nn::QuantModeName(args.quant) + ".artifact";
    io::ArtifactOptions artifact_options;
    artifact_options.quant = args.quant;
    io::WriteModelArtifact(quant_path, model, speed.get(), artifact_options);
    std::printf("quantised artifact: %s\n", quant_path.c_str());
  }
  const std::string network_path = args.out + "/network.csv";
  io::WriteNetworkCsv(dataset.network, network_path);
  std::printf("artifact: %s\nnetwork:  %s\n", artifact_path.c_str(),
              network_path.c_str());

  if (args.golden > 0) {
    const std::string golden_path = args.out + "/golden.csv";
    std::FILE* f = std::fopen(golden_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", golden_path.c_str());
      return 1;
    }
    // Hex floats (%a) round-trip doubles exactly; the replay in
    // deepod_serve --check compares predictions bit-for-bit.
    std::fprintf(f,
                 "origin_segment,dest_segment,origin_ratio,dest_ratio,"
                 "departure_time,weather,prediction\n");
    const size_t n = std::min(args.golden, dataset.test.size());
    for (size_t i = 0; i < n; ++i) {
      const traj::OdInput& od = dataset.test[i].od;
      const double prediction = model.Predict(od);
      std::fprintf(f, "%zu,%zu,%a,%a,%a,%d,%a\n", od.origin_segment,
                   od.dest_segment, od.origin_ratio, od.dest_ratio,
                   od.departure_time, od.weather_type, prediction);
    }
    std::fclose(f);
    std::printf("golden:   %s (%zu queries)\n", golden_path.c_str(), n);
  }
  return 0;
}
