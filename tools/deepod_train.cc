// deepod_train: trains a DeepOD model on a simulated city and emits a
// self-contained serving artifact next to everything a separate serving
// process needs:
//
//   <out>/model.artifact  config + model state + frozen speed field
//   <out>/network.csv     the road network (io::WriteNetworkCsv)
//   <out>/golden.csv      (--golden N) N test queries with this process's
//                         predictions, hex-float encoded so a replay can be
//                         compared bit-for-bit (see deepod_serve --check)
//   <out>/model.<mode>.artifact  (--quant MODE) the same artifact with its
//                         eligible weights stored quantised (fp16 or int8,
//                         serialize-v3); replay it with deepod_serve
//                         --tolerance, not bit-for-bit
//
// The defaults mirror the test suite's tiny dataset so a full
// train->save->serve round trip finishes in CI time.
//
// With --data DIR the dataset comes from a deepod_datagen directory instead
// of being simulated in-process: the traffic/weather environment is rebuilt
// deterministically from DIR/manifest.csv and the splits are loaded from
// the columnar trip stores. --feed sharded trains fully out-of-core: the
// model-initialisation inputs (co-occurrence counts, time scale) and the
// fallback estimators stream from the mmap'd shards record by record, the
// training split is never materialised in memory, and the resulting model
// is bit-identical to the in-memory path. --parity-check trains the
// sharded and the in-memory grouped-shuffle paths side by side at 1 thread
// and fails unless their validation curves and final states are
// bit-identical.
//
// Fleet serving outputs: every run also trains the two serving-time
// fallback estimators from the training split — an OD-histogram oracle
// (grid-bucketed OD pairs x time slots) and per-segment link means — and
// embeds them, plus --network-id, in model.artifact; a standalone
// <out>/oracle.artifact carries just the fallback tier so deepod_server
// --fleet can answer for a city whose model never trained. --oracle-only
// skips model training entirely and emits only oracle.artifact +
// network.csv.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "baselines/od_oracle.h"
#include "baselines/path_tte.h"
#include "cli_flags.h"
#include "core/deepod_config.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "core/trip_feed.h"
#include "datagen_manifest.h"
#include "io/model_artifact.h"
#include "io/sharded_trip_source.h"
#include "io/trip_store.h"
#include "nn/quant.h"
#include "io/trip_io.h"
#include "road/edge_graph.h"
#include "sim/dataset.h"
#include "sim/snapshot_speed_field.h"
#include "util/weighted_digraph.h"

namespace {

struct Args {
  std::string out = ".";
  size_t scale = 16;
  int epochs = 1;
  size_t grid = 6;
  size_t trips_per_day = 12;
  size_t num_days = 15;
  uint64_t seed = 17;
  size_t threads = 1;
  size_t golden = 0;
  std::string checkpoint;  // optional: also write a resumable checkpoint
  // optional: also write <out>/model.<mode>.artifact with quantised weights
  deepod::nn::QuantMode quant = deepod::nn::QuantMode::kNone;
  std::string data;               // datagen directory (empty = simulate)
  std::string feed = "inmemory";  // inmemory | sharded (needs --data)
  bool parity_check = false;      // sharded vs in-memory bit parity
  uint64_t network_id = 0;        // stamped into the artifacts (fleet)
  bool oracle_only = false;       // emit only oracle.artifact + network.csv
  // OD-oracle grid resolution. The 16-cell default suits city-scale
  // networks; tiny smoke grids want a coarse oracle (2-4) so OD cell pairs
  // actually repeat and the fallback tier has in-distribution coverage.
  size_t oracle_grid = 16;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--out DIR] [--scale N] [--epochs N] [--grid N]\n"
      "          [--trips-per-day N] [--days N] [--seed N] [--threads N]\n"
      "          [--golden N] [--checkpoint PATH] [--quant fp16|int8]\n"
      "          [--data DIR] [--feed inmemory|sharded] [--parity-check]\n"
      "          [--network-id N] [--oracle-only] [--oracle-grid N]\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  deepod::tools::cli::FlagCursor flags(argc, argv);
  while (flags.Next()) {
    const std::string& flag = flags.flag();
    if (flag == "--out") {
      if (!flags.StringValue(&args->out)) return false;
    } else if (flag == "--scale") {
      if (!flags.SizeValue(&args->scale)) return false;
    } else if (flag == "--epochs") {
      if (!flags.IntValue(&args->epochs)) return false;
    } else if (flag == "--grid") {
      if (!flags.SizeValue(&args->grid)) return false;
    } else if (flag == "--trips-per-day") {
      if (!flags.SizeValue(&args->trips_per_day)) return false;
    } else if (flag == "--days") {
      if (!flags.SizeValue(&args->num_days)) return false;
    } else if (flag == "--seed") {
      if (!flags.U64Value(&args->seed)) return false;
    } else if (flag == "--threads") {
      if (!flags.SizeValue(&args->threads)) return false;
    } else if (flag == "--golden") {
      if (!flags.SizeValue(&args->golden)) return false;
    } else if (flag == "--checkpoint") {
      if (!flags.StringValue(&args->checkpoint)) return false;
    } else if (flag == "--quant") {
      if (!flags.QuantValue(&args->quant)) return false;
    } else if (flag == "--data") {
      if (!flags.DataDirValue(&args->data)) return false;
    } else if (flag == "--feed") {
      if (!flags.StringValue(&args->feed)) return false;
      if (args->feed != "inmemory" && args->feed != "sharded") {
        std::fprintf(stderr, "unknown --feed '%s' (expected inmemory|sharded)\n",
                     args->feed.c_str());
        return false;
      }
    } else if (flag == "--parity-check") {
      args->parity_check = true;
    } else if (flag == "--network-id") {
      if (!flags.U64Value(&args->network_id)) return false;
    } else if (flag == "--oracle-only") {
      args->oracle_only = true;
    } else if (flag == "--oracle-grid") {
      if (!flags.SizeValue(&args->oracle_grid)) return false;
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepod;
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (args.data.empty() && (args.feed == "sharded" || args.parity_check)) {
    std::fprintf(stderr, "--feed sharded / --parity-check require --data\n");
    return 2;
  }

  sim::Dataset dataset;
  std::vector<std::string> shard_paths;
  std::vector<size_t> shard_sizes;
  // --feed sharded keeps the training split on disk end to end: one
  // streamed pass over the shards computes everything construction-time
  // code would otherwise read dataset.train for (co-occurrence counts,
  // time scale, fallback estimators), bit-identically to the in-memory
  // path. --parity-check needs both feeds and keeps the old behaviour.
  const bool streamed_init =
      !args.data.empty() && args.feed == "sharded" && !args.parity_check;
  road::EdgeGraphAccumulator streamed_edges;
  double streamed_time_sum = 0.0;
  size_t streamed_trips = 0;
  std::unique_ptr<baselines::OdOracle> oracle;
  baselines::LinkMeanEstimator link_mean;
  if (!args.data.empty()) {
    // Datagen directory: rebuild the environment from the manifest and load
    // the splits from the columnar trip stores (mmap'd, zero projections).
    const tools::DatagenManifest manifest =
        tools::ReadManifest(args.data + "/manifest.csv");
    const sim::DatasetConfig dataset_config = tools::ToDatasetConfig(manifest);
    std::printf("loading dataset from %s (%zu shard(s))...\n",
                args.data.c_str(), manifest.shards);
    sim::InitDatasetEnvironment(dataset_config, &dataset);
    baselines::OdOracle::Options oracle_options;
    oracle_options.grid_cells = args.oracle_grid;
    oracle = std::make_unique<baselines::OdOracle>(dataset.network,
                                                   oracle_options);
    shard_paths = tools::ManifestShardPaths(args.data, manifest.shards);
    traj::TripRecord record;
    for (const auto& path : shard_paths) {
      const auto reader = io::TripStoreReader::OpenOrThrow(path);
      shard_sizes.push_back(reader.size());
      if (streamed_init) {
        for (size_t i = 0; i < reader.size(); ++i) {
          reader.Decode(i, &record);
          streamed_edges.AddSequence(dataset.network,
                                     record.trajectory.SegmentIds());
          streamed_time_sum += record.travel_time;
          ++streamed_trips;
          oracle->Add(dataset.network, record.od, record.travel_time);
          link_mean.Add(record.trajectory);
        }
      } else {
        auto trips = reader.ReadAll();
        dataset.train.insert(dataset.train.end(),
                             std::make_move_iterator(trips.begin()),
                             std::make_move_iterator(trips.end()));
      }
    }
    dataset.validation =
        io::TripStoreReader::OpenOrThrow(args.data + "/val.trips").ReadAll();
    dataset.test =
        io::TripStoreReader::OpenOrThrow(args.data + "/test.trips").ReadAll();
  } else {
    sim::DatasetConfig dataset_config;
    dataset_config.city = road::XianSimConfig();
    dataset_config.city.rows = args.grid;
    dataset_config.city.cols = args.grid;
    dataset_config.trips_per_day = args.trips_per_day;
    dataset_config.num_days = args.num_days;
    dataset_config.seed = args.seed;
    std::printf("building dataset (%zux%zu grid, %zu days)...\n", args.grid,
                args.grid, args.num_days);
    sim::BuildDataset(dataset_config, &dataset);
  }
  std::printf("dataset: %zu train / %zu val / %zu test trips, %zu segments\n",
              streamed_init ? streamed_trips : dataset.train.size(),
              dataset.validation.size(), dataset.test.size(),
              dataset.network.num_segments());

  // The fallback tier for fleet serving: an OD-histogram oracle plus link
  // means, trained from exactly the split the model trains on.
  if (oracle == nullptr) {
    baselines::OdOracle::Options oracle_options;
    oracle_options.grid_cells = args.oracle_grid;
    oracle = std::make_unique<baselines::OdOracle>(dataset.network,
                                                   oracle_options);
  }
  if (!streamed_init) {
    for (const auto& trip : dataset.train) {
      oracle->Add(dataset.network, trip.od, trip.travel_time);
      link_mean.Add(trip.trajectory);
    }
  }
  oracle->Finalize();
  link_mean.Finalize(dataset.network.num_segments());
  std::printf("oracle: %zu OD buckets over %zu pairs, global mean %.1f s\n",
              oracle->num_buckets(), oracle->num_pairs(),
              oracle->global_mean());

  std::filesystem::create_directories(args.out);
  const std::string oracle_path = args.out + "/oracle.artifact";
  const std::string network_path = args.out + "/network.csv";
  io::WriteOracleArtifact(oracle_path,
                          static_cast<uint32_t>(args.network_id),
                          oracle.get(), &link_mean);
  io::WriteNetworkCsv(dataset.network, network_path);
  if (args.oracle_only) {
    std::printf("oracle:   %s\nnetwork:  %s\n", oracle_path.c_str(),
                network_path.c_str());
    return 0;
  }

  core::DeepOdConfig config = core::DeepOdConfig().Scaled(args.scale);
  config.epochs = args.epochs;
  config.batch_size = 8;
  config.num_threads = args.threads;

  if (args.parity_check) {
    // The out-of-core feed against its in-memory twin: both epoch orders
    // come from core::BuildShardEpochOrder over the same shard sizes, so at
    // 1 thread every validation MAE and the final model state must agree
    // bit-for-bit. Any divergence is a decode or feed-order bug.
    config.num_threads = 1;
    core::DeepOdModel model_mem(config, dataset);
    core::InMemoryTripFeed feed_mem(dataset.train, shard_sizes);
    core::DeepOdTrainer trainer_mem(model_mem, dataset, &feed_mem);
    core::DeepOdModel model_ooc(config, dataset);
    io::ShardedTripSource feed_ooc(shard_paths);
    core::DeepOdTrainer trainer_ooc(model_ooc, dataset, &feed_ooc);
    bool ok = true;
    for (int epoch = 1; epoch <= config.epochs; ++epoch) {
      const double val_mem = trainer_mem.TrainPrefix(epoch);
      const double val_ooc = trainer_ooc.TrainPrefix(epoch);
      const bool same = std::memcmp(&val_mem, &val_ooc, sizeof(double)) == 0;
      ok = ok && same;
      std::printf("epoch %d: in-memory %a, out-of-core %a — %s\n", epoch,
                  val_mem, val_ooc, same ? "match" : "MISMATCH");
    }
    const nn::StateDict state_mem = model_mem.State();
    const nn::StateDict state_ooc = model_ooc.State();
    std::vector<double> flat_mem, flat_ooc;
    for (const auto& e : state_mem.entries()) {
      flat_mem.insert(flat_mem.end(), e.data, e.data + e.size);
    }
    for (const auto& e : state_ooc.entries()) {
      flat_ooc.insert(flat_ooc.end(), e.data, e.data + e.size);
    }
    const bool state_same =
        flat_mem.size() == flat_ooc.size() &&
        std::memcmp(flat_mem.data(), flat_ooc.data(),
                    flat_mem.size() * sizeof(double)) == 0;
    ok = ok && state_same;
    std::printf("final model state (%zu doubles): %s\n", flat_mem.size(),
                state_same ? "match" : "MISMATCH");
    std::printf(ok ? "PARITY OK\n" : "PARITY FAILED\n");
    return ok ? 0 : 1;
  }

  std::unique_ptr<core::DeepOdModel> model;
  if (streamed_init) {
    // Same RNG order, same co-occurrence sums (order-independent), same
    // time-scale summation order as the in-memory constructor — the
    // datagen test pins the resulting state bit-for-bit.
    const util::WeightedDigraph edge_graph =
        streamed_edges.Build(dataset.network);
    const double time_scale =
        streamed_trips == 0
            ? 1.0
            : streamed_time_sum / static_cast<double>(streamed_trips);
    model = std::make_unique<core::DeepOdModel>(config, dataset, &edge_graph,
                                                time_scale);
  } else {
    model = std::make_unique<core::DeepOdModel>(config, dataset);
  }
  std::unique_ptr<io::ShardedTripSource> sharded_feed;
  if (args.feed == "sharded") {
    io::ShardedTripSource::Options feed_options;
    sharded_feed =
        std::make_unique<io::ShardedTripSource>(shard_paths, feed_options);
  }
  core::DeepOdTrainer trainer(*model, dataset, sharded_feed.get());
  const double best_mae = trainer.Train();
  std::printf("trained %d epoch(s), %zu steps, validation MAE %.3f s\n",
              config.epochs, trainer.steps_taken(), best_mae);

  if (!args.checkpoint.empty()) {
    trainer.SaveCheckpoint(args.checkpoint);
    std::printf("checkpoint: %s\n", args.checkpoint.c_str());
  }

  // Freeze the speed field over the window every test query falls in, so
  // serving from the artifact reproduces the training process's external
  // features exactly.
  std::unique_ptr<sim::SnapshotSpeedField> speed;
  if (dataset.speed_matrices != nullptr && !dataset.test.empty()) {
    double begin = dataset.test.front().od.departure_time;
    double end = begin;
    for (const auto& trip : dataset.test) {
      begin = std::min(begin, trip.od.departure_time);
      end = std::max(end, trip.od.departure_time);
    }
    speed = std::make_unique<sim::SnapshotSpeedField>(
        sim::SnapshotSpeedField::Capture(*dataset.speed_matrices, begin, end));
    std::printf("speed field: %zu snapshots of %zux%zu\n",
                speed->snapshots().size(), speed->rows(), speed->cols());
  }

  const std::string artifact_path = args.out + "/model.artifact";
  io::ArtifactOptions artifact_options;
  artifact_options.network_id = static_cast<uint32_t>(args.network_id);
  artifact_options.oracle = oracle.get();
  artifact_options.link_mean = &link_mean;
  io::WriteModelArtifact(artifact_path, *model, speed.get(),
                         artifact_options);
  if (args.quant != nn::QuantMode::kNone) {
    // The fp64 artifact above stays the golden-replay source of truth; the
    // quantised sibling is the deployment variant.
    const std::string quant_path = args.out + "/model." +
                                   nn::QuantModeName(args.quant) + ".artifact";
    io::ArtifactOptions quant_options = artifact_options;
    quant_options.quant = args.quant;
    io::WriteModelArtifact(quant_path, *model, speed.get(), quant_options);
    std::printf("quantised artifact: %s\n", quant_path.c_str());
  }
  std::printf("artifact: %s\noracle:   %s\nnetwork:  %s\n",
              artifact_path.c_str(), oracle_path.c_str(),
              network_path.c_str());

  if (args.golden > 0) {
    const std::string golden_path = args.out + "/golden.csv";
    std::FILE* f = std::fopen(golden_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", golden_path.c_str());
      return 1;
    }
    // Hex floats (%a) round-trip doubles exactly; the replay in
    // deepod_serve --check compares predictions bit-for-bit.
    std::fprintf(f,
                 "origin_segment,dest_segment,origin_ratio,dest_ratio,"
                 "departure_time,weather,prediction\n");
    // For fleet-destined artifacts (--network-id set) only in-distribution
    // test queries are written: under a fleet's oracle fallback policy,
    // out-of-distribution ODs are answered by the oracle tier, so goldens
    // over them would not replay bit-identically against the model.
    // Restricting to covered cell pairs keeps the golden file valid
    // against every fallback policy. Single-city artifacts keep the full
    // unfiltered golden set — no OOD redirection exists there.
    const bool fleet_goldens = args.network_id > 0;
    size_t n = 0;
    for (size_t i = 0; i < dataset.test.size() && n < args.golden; ++i) {
      const traj::OdInput& od = dataset.test[i].od;
      if (fleet_goldens && !oracle->InDistribution(dataset.network, od)) {
        continue;
      }
      const double prediction = model->Predict(od);
      std::fprintf(f, "%zu,%zu,%a,%a,%a,%d,%a\n", od.origin_segment,
                   od.dest_segment, od.origin_ratio, od.dest_ratio,
                   od.departure_time, od.weather_type, prediction);
      ++n;
    }
    std::fclose(f);
    std::printf("golden:   %s (%zu queries)\n", golden_path.c_str(), n);
  }
  return 0;
}
