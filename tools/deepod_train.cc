// deepod_train: trains a DeepOD model on a simulated city and emits a
// self-contained serving artifact next to everything a separate serving
// process needs:
//
//   <out>/model.artifact  config + model state + frozen speed field
//   <out>/network.csv     the road network (io::WriteNetworkCsv)
//   <out>/golden.csv      (--golden N) N test queries with this process's
//                         predictions, hex-float encoded so a replay can be
//                         compared bit-for-bit (see deepod_serve --check)
//   <out>/model.<mode>.artifact  (--quant MODE) the same artifact with its
//                         eligible weights stored quantised (fp16 or int8,
//                         serialize-v3); replay it with deepod_serve
//                         --tolerance, not bit-for-bit
//
// The defaults mirror the test suite's tiny dataset so a full
// train->save->serve round trip finishes in CI time.
//
// With --data DIR the dataset comes from a deepod_datagen directory instead
// of being simulated in-process: the traffic/weather environment is rebuilt
// deterministically from DIR/manifest.csv and the splits are loaded from
// the columnar trip stores. --feed sharded trains out-of-core from the
// mmap'd shards (model initialisation still reads the training split once
// for the co-occurrence counts); --parity-check trains the sharded and the
// in-memory grouped-shuffle paths side by side at 1 thread and fails unless
// their validation curves and final states are bit-identical.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cli_flags.h"
#include "core/deepod_config.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "core/trip_feed.h"
#include "datagen_manifest.h"
#include "io/model_artifact.h"
#include "io/sharded_trip_source.h"
#include "io/trip_store.h"
#include "nn/quant.h"
#include "io/trip_io.h"
#include "sim/dataset.h"
#include "sim/snapshot_speed_field.h"

namespace {

struct Args {
  std::string out = ".";
  size_t scale = 16;
  int epochs = 1;
  size_t grid = 6;
  size_t trips_per_day = 12;
  size_t num_days = 15;
  uint64_t seed = 17;
  size_t threads = 1;
  size_t golden = 0;
  std::string checkpoint;  // optional: also write a resumable checkpoint
  // optional: also write <out>/model.<mode>.artifact with quantised weights
  deepod::nn::QuantMode quant = deepod::nn::QuantMode::kNone;
  std::string data;               // datagen directory (empty = simulate)
  std::string feed = "inmemory";  // inmemory | sharded (needs --data)
  bool parity_check = false;      // sharded vs in-memory bit parity
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--out DIR] [--scale N] [--epochs N] [--grid N]\n"
      "          [--trips-per-day N] [--days N] [--seed N] [--threads N]\n"
      "          [--golden N] [--checkpoint PATH] [--quant fp16|int8]\n"
      "          [--data DIR] [--feed inmemory|sharded] [--parity-check]\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  deepod::tools::cli::FlagCursor flags(argc, argv);
  while (flags.Next()) {
    const std::string& flag = flags.flag();
    if (flag == "--out") {
      if (!flags.StringValue(&args->out)) return false;
    } else if (flag == "--scale") {
      if (!flags.SizeValue(&args->scale)) return false;
    } else if (flag == "--epochs") {
      if (!flags.IntValue(&args->epochs)) return false;
    } else if (flag == "--grid") {
      if (!flags.SizeValue(&args->grid)) return false;
    } else if (flag == "--trips-per-day") {
      if (!flags.SizeValue(&args->trips_per_day)) return false;
    } else if (flag == "--days") {
      if (!flags.SizeValue(&args->num_days)) return false;
    } else if (flag == "--seed") {
      if (!flags.U64Value(&args->seed)) return false;
    } else if (flag == "--threads") {
      if (!flags.SizeValue(&args->threads)) return false;
    } else if (flag == "--golden") {
      if (!flags.SizeValue(&args->golden)) return false;
    } else if (flag == "--checkpoint") {
      if (!flags.StringValue(&args->checkpoint)) return false;
    } else if (flag == "--quant") {
      if (!flags.QuantValue(&args->quant)) return false;
    } else if (flag == "--data") {
      if (!flags.DataDirValue(&args->data)) return false;
    } else if (flag == "--feed") {
      if (!flags.StringValue(&args->feed)) return false;
      if (args->feed != "inmemory" && args->feed != "sharded") {
        std::fprintf(stderr, "unknown --feed '%s' (expected inmemory|sharded)\n",
                     args->feed.c_str());
        return false;
      }
    } else if (flag == "--parity-check") {
      args->parity_check = true;
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepod;
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (args.data.empty() && (args.feed == "sharded" || args.parity_check)) {
    std::fprintf(stderr, "--feed sharded / --parity-check require --data\n");
    return 2;
  }

  sim::Dataset dataset;
  std::vector<std::string> shard_paths;
  std::vector<size_t> shard_sizes;
  if (!args.data.empty()) {
    // Datagen directory: rebuild the environment from the manifest and load
    // the splits from the columnar trip stores (mmap'd, zero projections).
    const tools::DatagenManifest manifest =
        tools::ReadManifest(args.data + "/manifest.csv");
    const sim::DatasetConfig dataset_config = tools::ToDatasetConfig(manifest);
    std::printf("loading dataset from %s (%zu shard(s))...\n",
                args.data.c_str(), manifest.shards);
    sim::InitDatasetEnvironment(dataset_config, &dataset);
    shard_paths = tools::ManifestShardPaths(args.data, manifest.shards);
    for (const auto& path : shard_paths) {
      const auto reader = io::TripStoreReader::OpenOrThrow(path);
      shard_sizes.push_back(reader.size());
      // Model initialisation (co-occurrence counts, time scale) still walks
      // the training split in memory; only the trainer feed is out-of-core.
      auto trips = reader.ReadAll();
      dataset.train.insert(dataset.train.end(),
                           std::make_move_iterator(trips.begin()),
                           std::make_move_iterator(trips.end()));
    }
    dataset.validation =
        io::TripStoreReader::OpenOrThrow(args.data + "/val.trips").ReadAll();
    dataset.test =
        io::TripStoreReader::OpenOrThrow(args.data + "/test.trips").ReadAll();
  } else {
    sim::DatasetConfig dataset_config;
    dataset_config.city = road::XianSimConfig();
    dataset_config.city.rows = args.grid;
    dataset_config.city.cols = args.grid;
    dataset_config.trips_per_day = args.trips_per_day;
    dataset_config.num_days = args.num_days;
    dataset_config.seed = args.seed;
    std::printf("building dataset (%zux%zu grid, %zu days)...\n", args.grid,
                args.grid, args.num_days);
    sim::BuildDataset(dataset_config, &dataset);
  }
  std::printf("dataset: %zu train / %zu val / %zu test trips, %zu segments\n",
              dataset.train.size(), dataset.validation.size(),
              dataset.test.size(), dataset.network.num_segments());

  core::DeepOdConfig config = core::DeepOdConfig().Scaled(args.scale);
  config.epochs = args.epochs;
  config.batch_size = 8;
  config.num_threads = args.threads;

  if (args.parity_check) {
    // The out-of-core feed against its in-memory twin: both epoch orders
    // come from core::BuildShardEpochOrder over the same shard sizes, so at
    // 1 thread every validation MAE and the final model state must agree
    // bit-for-bit. Any divergence is a decode or feed-order bug.
    config.num_threads = 1;
    core::DeepOdModel model_mem(config, dataset);
    core::InMemoryTripFeed feed_mem(dataset.train, shard_sizes);
    core::DeepOdTrainer trainer_mem(model_mem, dataset, &feed_mem);
    core::DeepOdModel model_ooc(config, dataset);
    io::ShardedTripSource feed_ooc(shard_paths);
    core::DeepOdTrainer trainer_ooc(model_ooc, dataset, &feed_ooc);
    bool ok = true;
    for (int epoch = 1; epoch <= config.epochs; ++epoch) {
      const double val_mem = trainer_mem.TrainPrefix(epoch);
      const double val_ooc = trainer_ooc.TrainPrefix(epoch);
      const bool same = std::memcmp(&val_mem, &val_ooc, sizeof(double)) == 0;
      ok = ok && same;
      std::printf("epoch %d: in-memory %a, out-of-core %a — %s\n", epoch,
                  val_mem, val_ooc, same ? "match" : "MISMATCH");
    }
    const nn::StateDict state_mem = model_mem.State();
    const nn::StateDict state_ooc = model_ooc.State();
    std::vector<double> flat_mem, flat_ooc;
    for (const auto& e : state_mem.entries()) {
      flat_mem.insert(flat_mem.end(), e.data, e.data + e.size);
    }
    for (const auto& e : state_ooc.entries()) {
      flat_ooc.insert(flat_ooc.end(), e.data, e.data + e.size);
    }
    const bool state_same =
        flat_mem.size() == flat_ooc.size() &&
        std::memcmp(flat_mem.data(), flat_ooc.data(),
                    flat_mem.size() * sizeof(double)) == 0;
    ok = ok && state_same;
    std::printf("final model state (%zu doubles): %s\n", flat_mem.size(),
                state_same ? "match" : "MISMATCH");
    std::printf(ok ? "PARITY OK\n" : "PARITY FAILED\n");
    return ok ? 0 : 1;
  }

  core::DeepOdModel model(config, dataset);
  std::unique_ptr<io::ShardedTripSource> sharded_feed;
  if (args.feed == "sharded") {
    io::ShardedTripSource::Options feed_options;
    sharded_feed =
        std::make_unique<io::ShardedTripSource>(shard_paths, feed_options);
  }
  core::DeepOdTrainer trainer(model, dataset, sharded_feed.get());
  const double best_mae = trainer.Train();
  std::printf("trained %d epoch(s), %zu steps, validation MAE %.3f s\n",
              config.epochs, trainer.steps_taken(), best_mae);

  if (!args.checkpoint.empty()) {
    trainer.SaveCheckpoint(args.checkpoint);
    std::printf("checkpoint: %s\n", args.checkpoint.c_str());
  }

  // Freeze the speed field over the window every test query falls in, so
  // serving from the artifact reproduces the training process's external
  // features exactly.
  std::unique_ptr<sim::SnapshotSpeedField> speed;
  if (dataset.speed_matrices != nullptr && !dataset.test.empty()) {
    double begin = dataset.test.front().od.departure_time;
    double end = begin;
    for (const auto& trip : dataset.test) {
      begin = std::min(begin, trip.od.departure_time);
      end = std::max(end, trip.od.departure_time);
    }
    speed = std::make_unique<sim::SnapshotSpeedField>(
        sim::SnapshotSpeedField::Capture(*dataset.speed_matrices, begin, end));
    std::printf("speed field: %zu snapshots of %zux%zu\n",
                speed->snapshots().size(), speed->rows(), speed->cols());
  }

  const std::string artifact_path = args.out + "/model.artifact";
  io::WriteModelArtifact(artifact_path, model, speed.get());
  if (args.quant != nn::QuantMode::kNone) {
    // The fp64 artifact above stays the golden-replay source of truth; the
    // quantised sibling is the deployment variant.
    const std::string quant_path = args.out + "/model." +
                                   nn::QuantModeName(args.quant) + ".artifact";
    io::ArtifactOptions artifact_options;
    artifact_options.quant = args.quant;
    io::WriteModelArtifact(quant_path, model, speed.get(), artifact_options);
    std::printf("quantised artifact: %s\n", quant_path.c_str());
  }
  const std::string network_path = args.out + "/network.csv";
  io::WriteNetworkCsv(dataset.network, network_path);
  std::printf("artifact: %s\nnetwork:  %s\n", artifact_path.c_str(),
              network_path.c_str());

  if (args.golden > 0) {
    const std::string golden_path = args.out + "/golden.csv";
    std::FILE* f = std::fopen(golden_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", golden_path.c_str());
      return 1;
    }
    // Hex floats (%a) round-trip doubles exactly; the replay in
    // deepod_serve --check compares predictions bit-for-bit.
    std::fprintf(f,
                 "origin_segment,dest_segment,origin_ratio,dest_ratio,"
                 "departure_time,weather,prediction\n");
    const size_t n = std::min(args.golden, dataset.test.size());
    for (size_t i = 0; i < n; ++i) {
      const traj::OdInput& od = dataset.test[i].od;
      const double prediction = model.Predict(od);
      std::fprintf(f, "%zu,%zu,%a,%a,%a,%d,%a\n", od.origin_segment,
                   od.dest_segment, od.origin_ratio, od.dest_ratio,
                   od.departure_time, od.weather_type, prediction);
    }
    std::fclose(f);
    std::printf("golden:   %s (%zu queries)\n", golden_path.c_str(), n);
  }
  return 0;
}
