#include "cli_flags.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace deepod::tools::cli {

bool FlagCursor::Next() {
  ++index_;
  if (index_ >= argc_) return false;
  flag_ = argv_[index_];
  return true;
}

const char* FlagCursor::TakeRaw() {
  if (index_ + 1 >= argc_) {
    std::fprintf(stderr, "missing value for %s\n", flag_.c_str());
    return nullptr;
  }
  return argv_[++index_];
}

bool FlagCursor::StringValue(std::string* out) {
  const char* v = TakeRaw();
  if (v == nullptr) return false;
  *out = v;
  return true;
}

bool FlagCursor::SizeValue(size_t* out) {
  const char* v = TakeRaw();
  if (v == nullptr) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0') {
    std::fprintf(stderr, "%s expects an unsigned integer, got '%s'\n",
                 flag_.c_str(), v);
    return false;
  }
  *out = static_cast<size_t>(parsed);
  return true;
}

bool FlagCursor::IntValue(int* out) {
  const char* v = TakeRaw();
  if (v == nullptr) return false;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0') {
    std::fprintf(stderr, "%s expects an integer, got '%s'\n", flag_.c_str(),
                 v);
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

bool FlagCursor::U64Value(uint64_t* out) {
  size_t parsed = 0;
  if (!SizeValue(&parsed)) return false;
  *out = parsed;
  return true;
}

bool FlagCursor::DoubleValue(double* out) {
  const char* v = TakeRaw();
  if (v == nullptr) return false;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (errno != 0 || end == v || *end != '\0') {
    std::fprintf(stderr, "%s expects a number, got '%s'\n", flag_.c_str(), v);
    return false;
  }
  *out = parsed;
  return true;
}

bool FlagCursor::PortValue(uint16_t* out) {
  size_t parsed = 0;
  if (!SizeValue(&parsed)) return false;
  if (parsed > 65535) {
    std::fprintf(stderr, "%s expects a port in 0..65535, got %zu\n",
                 flag_.c_str(), parsed);
    return false;
  }
  *out = static_cast<uint16_t>(parsed);
  return true;
}

bool FlagCursor::QuantValue(nn::QuantMode* out) {
  const char* v = TakeRaw();
  if (v == nullptr) return false;
  if (!nn::ParseQuantMode(v, out)) {
    std::fprintf(stderr, "unknown %s mode '%s' (expected none|fp16|int8)\n",
                 flag_.c_str(), v);
    return false;
  }
  return true;
}

bool FlagCursor::KernelValue(nn::KernelMode* out) {
  const char* v = TakeRaw();
  if (v == nullptr) return false;
  const std::string name = v;
  if (name == "legacy") {
    *out = nn::KernelMode::kLegacy;
  } else if (name == "blocked") {
    *out = nn::KernelMode::kBlocked;
  } else if (name == "vector") {
    *out = nn::KernelMode::kVector;
  } else if (name == "simd") {
    *out = nn::KernelMode::kSimd;
  } else {
    std::fprintf(stderr,
                 "unknown %s mode '%s' (expected "
                 "legacy|blocked|vector|simd)\n",
                 flag_.c_str(), v);
    return false;
  }
  return true;
}

bool FlagCursor::KernelValue(std::optional<nn::KernelMode>* out) {
  nn::KernelMode mode;
  if (!KernelValue(&mode)) return false;
  *out = mode;
  return true;
}

bool FlagCursor::ToleranceValue(double* out) {
  if (!DoubleValue(out)) return false;
  if (!(*out >= 0.0)) {
    std::fprintf(stderr, "%s must be >= 0\n", flag_.c_str());
    return false;
  }
  return true;
}

bool FlagCursor::DataDirValue(std::string* out) {
  if (!StringValue(out)) return false;
  const std::string manifest = *out + "/manifest.csv";
  struct stat st{};
  if (::stat(manifest.c_str(), &st) != 0) {
    std::fprintf(stderr,
                 "%s expects a deepod_datagen directory, but %s is missing\n",
                 flag_.c_str(), manifest.c_str());
    return false;
  }
  return true;
}

const char* FlagCursor::QuantHelp() { return "--quant none|fp16|int8"; }

const char* FlagCursor::KernelHelp() {
  return "--kernel legacy|blocked|vector|simd";
}

const char* FlagCursor::ToleranceHelp() { return "--tolerance X"; }

}  // namespace deepod::tools::cli
