#ifndef DEEPOD_TOOLS_CLI_FLAGS_H_
#define DEEPOD_TOOLS_CLI_FLAGS_H_

#include <cstdint>
#include <optional>
#include <string>

#include "nn/quant.h"
#include "nn/tensor.h"

namespace deepod::tools::cli {

// Shared flag parsing for the CLI tools (deepod_train / deepod_serve /
// deepod_server / deepod_loadgen). Before this helper each tool hand-rolled
// the same argv walk — three private copies of --quant parsing, two of
// --kernel, each with its own error text. FlagCursor owns the walk and the
// typed value-takes, so a given flag parses and fails identically
// everywhere:
//
//   cli::FlagCursor flags(argc, argv);
//   while (flags.Next()) {
//     if (flags.flag() == "--artifact") {
//       if (!flags.StringValue(&artifact_path)) return 2;
//     } else if (flags.flag() == "--quant") {
//       if (!flags.QuantValue(&options.quant)) return 2;
//     } else { return usage(); }
//   }
//
// Every value-take consumes the next argv token; on a missing or invalid
// value it prints one consistent diagnostic to stderr ("missing value for
// --artifact", "unknown --quant mode 'x' (expected none|fp16|int8)", ...)
// and returns false — callers just propagate exit code 2.
class FlagCursor {
 public:
  FlagCursor(int argc, char** argv) : argc_(argc), argv_(argv) {}

  // Advances to the next flag; false when argv is exhausted.
  bool Next();
  const std::string& flag() const { return flag_; }

  // Typed value-takes for the flag just returned by Next().
  bool StringValue(std::string* out);
  bool SizeValue(size_t* out);    // unsigned decimal
  bool IntValue(int* out);        // signed decimal
  bool U64Value(uint64_t* out);
  bool DoubleValue(double* out);
  bool PortValue(uint16_t* out);  // 0..65535

  // Domain-typed takes shared across tools.
  // --quant none|fp16|int8 (nn::ParseQuantMode under the hood).
  bool QuantValue(nn::QuantMode* out);
  // --kernel legacy|blocked|vector|simd.
  bool KernelValue(nn::KernelMode* out);
  bool KernelValue(std::optional<nn::KernelMode>* out);
  // --tolerance X with the X >= 0 contract every replay gate shares.
  bool ToleranceValue(double* out);
  // --data DIR: a deepod_datagen directory; fails with a consistent
  // message when DIR/manifest.csv is missing.
  bool DataDirValue(std::string* out);

  // Canonical usage fragments, so every tool's --help names the shared
  // flags the same way.
  static const char* QuantHelp();      // "--quant none|fp16|int8"
  static const char* KernelHelp();     // "--kernel legacy|blocked|vector|simd"
  static const char* ToleranceHelp();  // "--tolerance X"

 private:
  // Consumes the next argv token as the current flag's value; nullptr (and
  // the diagnostic) when there is none.
  const char* TakeRaw();

  int argc_;
  char** argv_;
  int index_ = 0;
  std::string flag_;
};

}  // namespace deepod::tools::cli

#endif  // DEEPOD_TOOLS_CLI_FLAGS_H_
