// deepod_inspect: prints the record table of a tagged state-dict file (a
// model artifact, a DeepOdModel::Save checkpoint or a trainer checkpoint):
// per-tensor name, storage dtype, shape, element count, on-disk payload
// size and the kSimd packed-layout tag, plus the per-row scale range of
// int8 records — after verifying framing and the trailing checksum. Legacy
// positional blobs are identified as such. For serving artifacts (records
// under "artifact.") a metadata block follows the table: artifact version,
// network id, the frozen speed grid's shape, and the OD-oracle fallback
// tier's grid/slot/bucket geometry when embedded. Exit codes: 0 readable,
// 1 corrupt/unreadable, 2 usage.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "nn/serialize.h"

namespace {

// How the kSimd tier consumes the tensor at predict time: 2-D weights are
// repacked into 4-row GEMV panels (nn/simd.h), Conv2d's 4-D kernels are
// walked planar by the vectorised axpy, and everything else (biases,
// scalars, buffers) has no packed form.
const char* PackedLayoutTag(const std::vector<size_t>& shape) {
  if (shape.size() == 2) return "panel4";
  if (shape.size() == 4) return "planar";
  return "-";
}

// First scalar of the named record, or `fallback` when the record is
// absent/empty (optional artifact metadata).
double ScalarRecord(const std::vector<uint8_t>& buffer,
                    const std::vector<deepod::nn::TensorRecord>& records,
                    const std::string& name, double fallback) {
  for (const auto& r : records) {
    if (r.name != name) continue;
    const std::vector<double> values = deepod::nn::ReadRecordPayload(buffer, r);
    return values.empty() ? fallback : values.front();
  }
  return fallback;
}

bool HasRecord(const std::vector<deepod::nn::TensorRecord>& records,
               const std::string& name) {
  for (const auto& r : records) {
    if (r.name == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepod;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s FILE\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  std::vector<uint8_t> buffer;
  const nn::LoadStatus read = nn::ReadFileBytes(path, &buffer);
  if (!read.ok()) {
    std::fprintf(stderr, "%s: [%s] %s\n", path.c_str(),
                 nn::LoadErrorKindName(read.kind), read.message.c_str());
    return 1;
  }
  if (nn::IsLegacyParameterBuffer(buffer)) {
    std::printf("%s: legacy positional parameter blob (v1), %zu bytes\n",
                path.c_str(), buffer.size());
    std::printf("records are unnamed; load it through DeepOdModel::Load\n");
    return 0;
  }
  std::vector<nn::TensorRecord> records;
  const nn::LoadStatus status = nn::IndexStateDict(buffer, &records);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: [%s] %s\n", path.c_str(),
                 nn::LoadErrorKindName(status.kind), status.message.c_str());
    return 1;
  }
  // The format version lives in the u32 after the magic (nn/serialize.h
  // byte layout); IndexStateDict has already validated it.
  const uint32_t version = static_cast<uint32_t>(buffer[4]) |
                           static_cast<uint32_t>(buffer[5]) << 8 |
                           static_cast<uint32_t>(buffer[6]) << 16 |
                           static_cast<uint32_t>(buffer[7]) << 24;
  std::printf("%s: state dict (v%u), %zu bytes, %zu records, checksum OK\n",
              path.c_str(), version, buffer.size(), records.size());
  size_t total_elements = 0;
  size_t total_payload = 0;
  size_t quantised = 0;
  for (const auto& r : records) {
    std::string shape = "[";
    for (size_t i = 0; i < r.shape.size(); ++i) {
      shape += (i > 0 ? "," : "") + std::to_string(r.shape[i]);
    }
    shape += "]";
    const size_t payload = nn::RecordPayloadBytes(r);
    std::printf("  %-56s %-4s %-14s %8zu %10zu B  %-6s", r.name.c_str(),
                nn::RecordDtypeName(r.dtype), shape.c_str(), r.num_elements,
                payload, PackedLayoutTag(r.shape));
    if (r.dtype == nn::kDtypeI8) {
      const std::vector<double> scales = nn::ReadRecordScales(buffer, r);
      const auto [lo, hi] = std::minmax_element(scales.begin(), scales.end());
      std::printf("  scales[%zu] %.3e..%.3e", scales.size(), *lo, *hi);
    }
    std::printf("\n");
    total_elements += r.num_elements;
    total_payload += payload;
    if (r.dtype != nn::kDtypeF64) ++quantised;
  }
  std::printf("total: %zu elements, %zu payload bytes (%zu of %zu records "
              "quantised; f64 would be %zu bytes)\n",
              total_elements, total_payload, quantised, records.size(),
              total_elements * sizeof(double));

  if (HasRecord(records, "artifact.version")) {
    // Serving-artifact metadata: what a fleet operator needs to know about
    // the file without loading it against a network.
    std::printf("artifact: version %.1f, network_id %u\n",
                ScalarRecord(buffer, records, "artifact.version", 0.0),
                static_cast<unsigned>(
                    ScalarRecord(buffer, records, "artifact.network_id", 0.0)));
    if (HasRecord(records, "speed.rows")) {
      std::printf("  speed grid: %zux%zu cells, %.0f s snapshots\n",
                  static_cast<size_t>(
                      ScalarRecord(buffer, records, "speed.rows", 0.0)),
                  static_cast<size_t>(
                      ScalarRecord(buffer, records, "speed.cols", 0.0)),
                  ScalarRecord(buffer, records, "speed.snapshot_seconds", 0.0));
    }
    if (HasRecord(records, "config.slot_seconds")) {
      const double slot_seconds =
          ScalarRecord(buffer, records, "config.slot_seconds", 0.0);
      if (slot_seconds > 0.0) {
        std::printf("  time slots: %.0f s (%zu per day)\n", slot_seconds,
                    static_cast<size_t>(86400.0 / slot_seconds));
      }
    }
    if (HasRecord(records, "oracle.grid_cells")) {
      const size_t grid_cells = static_cast<size_t>(
          ScalarRecord(buffer, records, "oracle.grid_cells", 0.0));
      std::printf(
          "  oracle: %zux%zu grid, %zu slots/day (%.0f s), "
          "%zu OD buckets over %zu pairs, global mean %.1f s\n",
          grid_cells, grid_cells,
          static_cast<size_t>(
              ScalarRecord(buffer, records, "oracle.slots_per_day", 0.0)),
          ScalarRecord(buffer, records, "oracle.slot_seconds", 0.0),
          [&] {
            for (const auto& r : records) {
              if (r.name == "oracle.keys") return r.num_elements;
            }
            return size_t{0};
          }(),
          [&] {
            for (const auto& r : records) {
              if (r.name == "oracle.pair_keys") return r.num_elements;
            }
            return size_t{0};
          }(),
          ScalarRecord(buffer, records, "oracle.global_mean", 0.0));
    }
    if (HasRecord(records, "linkmean.means")) {
      std::printf("  linkmean: %s, fallback %.1f s\n",
                  [&]() -> std::string {
                    for (const auto& r : records) {
                      if (r.name == "linkmean.means") {
                        return std::to_string(r.num_elements) + " segments";
                      }
                    }
                    return "0 segments";
                  }()
                      .c_str(),
                  ScalarRecord(buffer, records, "linkmean.fallback", 0.0));
    }
  }
  return 0;
}
