// deepod_inspect: prints the record table of a tagged state-dict file (a
// model artifact, a DeepOdModel::Save checkpoint or a trainer checkpoint):
// per-tensor name, shape and element count plus totals, after verifying
// framing and the trailing checksum. Legacy positional blobs are identified
// as such. Exit codes: 0 readable, 1 corrupt/unreadable, 2 usage.

#include <cstdio>
#include <string>
#include <vector>

#include "nn/serialize.h"

int main(int argc, char** argv) {
  using namespace deepod;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s FILE\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  std::vector<uint8_t> buffer;
  const nn::LoadStatus read = nn::ReadFileBytes(path, &buffer);
  if (!read.ok()) {
    std::fprintf(stderr, "%s: [%s] %s\n", path.c_str(),
                 nn::LoadErrorKindName(read.kind), read.message.c_str());
    return 1;
  }
  if (nn::IsLegacyParameterBuffer(buffer)) {
    std::printf("%s: legacy positional parameter blob (v1), %zu bytes\n",
                path.c_str(), buffer.size());
    std::printf("records are unnamed; load it through DeepOdModel::Load\n");
    return 0;
  }
  std::vector<nn::TensorRecord> records;
  const nn::LoadStatus status = nn::IndexStateDict(buffer, &records);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: [%s] %s\n", path.c_str(),
                 nn::LoadErrorKindName(status.kind), status.message.c_str());
    return 1;
  }
  std::printf("%s: state dict (v2), %zu bytes, %zu records, checksum OK\n",
              path.c_str(), buffer.size(), records.size());
  size_t total_elements = 0;
  for (const auto& r : records) {
    std::string shape = "[";
    for (size_t i = 0; i < r.shape.size(); ++i) {
      shape += (i > 0 ? "," : "") + std::to_string(r.shape[i]);
    }
    shape += "]";
    std::printf("  %-56s f64 %-14s %zu\n", r.name.c_str(), shape.c_str(),
                r.num_elements);
    total_elements += r.num_elements;
  }
  std::printf("total: %zu elements (%zu payload bytes)\n", total_elements,
              total_elements * sizeof(double));
  return 0;
}
