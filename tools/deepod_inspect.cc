// deepod_inspect: prints the record table of a tagged state-dict file (a
// model artifact, a DeepOdModel::Save checkpoint or a trainer checkpoint):
// per-tensor name, storage dtype, shape, element count, on-disk payload
// size and the kSimd packed-layout tag, plus the per-row scale range of
// int8 records — after verifying framing and the trailing checksum. Legacy
// positional blobs are identified as such. Exit codes: 0 readable,
// 1 corrupt/unreadable, 2 usage.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "nn/serialize.h"

namespace {

// How the kSimd tier consumes the tensor at predict time: 2-D weights are
// repacked into 4-row GEMV panels (nn/simd.h), Conv2d's 4-D kernels are
// walked planar by the vectorised axpy, and everything else (biases,
// scalars, buffers) has no packed form.
const char* PackedLayoutTag(const std::vector<size_t>& shape) {
  if (shape.size() == 2) return "panel4";
  if (shape.size() == 4) return "planar";
  return "-";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepod;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s FILE\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  std::vector<uint8_t> buffer;
  const nn::LoadStatus read = nn::ReadFileBytes(path, &buffer);
  if (!read.ok()) {
    std::fprintf(stderr, "%s: [%s] %s\n", path.c_str(),
                 nn::LoadErrorKindName(read.kind), read.message.c_str());
    return 1;
  }
  if (nn::IsLegacyParameterBuffer(buffer)) {
    std::printf("%s: legacy positional parameter blob (v1), %zu bytes\n",
                path.c_str(), buffer.size());
    std::printf("records are unnamed; load it through DeepOdModel::Load\n");
    return 0;
  }
  std::vector<nn::TensorRecord> records;
  const nn::LoadStatus status = nn::IndexStateDict(buffer, &records);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: [%s] %s\n", path.c_str(),
                 nn::LoadErrorKindName(status.kind), status.message.c_str());
    return 1;
  }
  // The format version lives in the u32 after the magic (nn/serialize.h
  // byte layout); IndexStateDict has already validated it.
  const uint32_t version = static_cast<uint32_t>(buffer[4]) |
                           static_cast<uint32_t>(buffer[5]) << 8 |
                           static_cast<uint32_t>(buffer[6]) << 16 |
                           static_cast<uint32_t>(buffer[7]) << 24;
  std::printf("%s: state dict (v%u), %zu bytes, %zu records, checksum OK\n",
              path.c_str(), version, buffer.size(), records.size());
  size_t total_elements = 0;
  size_t total_payload = 0;
  size_t quantised = 0;
  for (const auto& r : records) {
    std::string shape = "[";
    for (size_t i = 0; i < r.shape.size(); ++i) {
      shape += (i > 0 ? "," : "") + std::to_string(r.shape[i]);
    }
    shape += "]";
    const size_t payload = nn::RecordPayloadBytes(r);
    std::printf("  %-56s %-4s %-14s %8zu %10zu B  %-6s", r.name.c_str(),
                nn::RecordDtypeName(r.dtype), shape.c_str(), r.num_elements,
                payload, PackedLayoutTag(r.shape));
    if (r.dtype == nn::kDtypeI8) {
      const std::vector<double> scales = nn::ReadRecordScales(buffer, r);
      const auto [lo, hi] = std::minmax_element(scales.begin(), scales.end());
      std::printf("  scales[%zu] %.3e..%.3e", scales.size(), *lo, *hi);
    }
    std::printf("\n");
    total_elements += r.num_elements;
    total_payload += payload;
    if (r.dtype != nn::kDtypeF64) ++quantised;
  }
  std::printf("total: %zu elements, %zu payload bytes (%zu of %zu records "
              "quantised; f64 would be %zu bytes)\n",
              total_elements, total_payload, quantised, records.size(),
              total_elements * sizeof(double));
  return 0;
}
