// deepod_loadgen: open-loop Poisson load generator for deepod_server.
//
//   deepod_loadgen --port P [--host H] --network network.csv
//                  [--qps Q] [--duration S] [--connections N] [--seed S]
//                  [--deadline-ms D] [--high-fraction F] [--low-fraction F]
//                  [--tenants N] [--slo-ms X] [--hot-fraction F]
//                  [--json PATH] [--server-stats]
//                  [--assert-max-shed-rate X] [--assert-min-shed-rate X]
//                  [--assert-max-p99-ms X] [--assert-min-goodput X]
//
// Senders never wait for responses (open loop), so the offered rate stays
// at --qps even when the server sheds or slows — the overload scenario
// stays an overload. Reports client-observed p50/p95/p99, shed and error
// rates and goodput-under-SLO, plus the server's own obs registry fetched
// over the wire with --server-stats. --json writes the report as
// BENCH-json records (validate with tools/validate_bench_json.py). The
// --assert-* flags turn the run into a CI gate: exit 1 when the measured
// value crosses the bound.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "io/trip_io.h"
#include "obs/metrics.h"
#include "serve/server/loadgen.h"

int main(int argc, char** argv) {
  using namespace deepod;
  serve::net::LoadgenOptions options;
  options.fetch_server_stats = false;
  std::string network_path, json_path;
  double assert_max_shed_rate = -1.0;
  double assert_min_shed_rate = -1.0;
  double assert_max_p99_ms = -1.0;
  double assert_min_goodput = -1.0;
  bool print_server_stats = false;
  const auto usage = [&argv] {
    std::fprintf(
        stderr,
        "usage: %s --port P --network PATH [--host H] [--qps Q]\n"
        "  [--duration S] [--connections N] [--seed S] [--deadline-ms D]\n"
        "  [--high-fraction F] [--low-fraction F] [--tenants N]\n"
        "  [--slo-ms X] [--hot-fraction F] [--json PATH] [--server-stats]\n"
        "  [--assert-max-shed-rate X] [--assert-min-shed-rate X]\n"
        "  [--assert-max-p99-ms X] [--assert-min-goodput X]\n",
        argv[0]);
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (flag == "--port" && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (flag == "--network" && i + 1 < argc) {
      network_path = argv[++i];
    } else if (flag == "--qps" && i + 1 < argc) {
      options.qps = std::atof(argv[++i]);
    } else if (flag == "--duration" && i + 1 < argc) {
      options.duration_seconds = std::atof(argv[++i]);
    } else if (flag == "--connections" && i + 1 < argc) {
      options.connections = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--seed" && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--deadline-ms" && i + 1 < argc) {
      options.deadline_ms = std::atoi(argv[++i]);
    } else if (flag == "--high-fraction" && i + 1 < argc) {
      options.high_fraction = std::atof(argv[++i]);
    } else if (flag == "--low-fraction" && i + 1 < argc) {
      options.low_fraction = std::atof(argv[++i]);
    } else if (flag == "--tenants" && i + 1 < argc) {
      options.num_tenants = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--slo-ms" && i + 1 < argc) {
      options.slo_ms = std::atof(argv[++i]);
    } else if (flag == "--hot-fraction" && i + 1 < argc) {
      options.hot_fraction = std::atof(argv[++i]);
    } else if (flag == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (flag == "--server-stats") {
      options.fetch_server_stats = true;
      print_server_stats = true;
    } else if (flag == "--assert-max-shed-rate" && i + 1 < argc) {
      assert_max_shed_rate = std::atof(argv[++i]);
    } else if (flag == "--assert-min-shed-rate" && i + 1 < argc) {
      assert_min_shed_rate = std::atof(argv[++i]);
    } else if (flag == "--assert-max-p99-ms" && i + 1 < argc) {
      assert_max_p99_ms = std::atof(argv[++i]);
    } else if (flag == "--assert-min-goodput" && i + 1 < argc) {
      assert_min_goodput = std::atof(argv[++i]);
    } else {
      return usage();
    }
  }
  if (options.port == 0 || network_path.empty()) {
    std::fprintf(stderr, "--port and --network are required\n");
    return 2;
  }
  // The workload needs the segment-id universe; read it off the same
  // network csv the server loaded so every OD pair validates.
  const road::RoadNetwork network = io::ReadNetworkCsv(network_path);
  options.num_segments = network.num_segments();
  if (options.num_segments == 0) {
    std::fprintf(stderr, "network %s has no segments\n", network_path.c_str());
    return 1;
  }

  serve::net::LoadgenReport report;
  try {
    report = serve::net::RunLoadgen(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen failed: %s\n", e.what());
    return 1;
  }

  std::printf(
      "loadgen: offered %.1f qps for %.2fs -> sent %llu ok %llu shed %llu "
      "expired %llu errors %llu lost %llu\n",
      report.offered_qps, report.elapsed_seconds,
      static_cast<unsigned long long>(report.sent),
      static_cast<unsigned long long>(report.ok),
      static_cast<unsigned long long>(report.shed),
      static_cast<unsigned long long>(report.deadline_expired),
      static_cast<unsigned long long>(report.errors),
      static_cast<unsigned long long>(report.lost));
  std::printf(
      "latency ms: p50 %.3f p95 %.3f p99 %.3f max %.3f | achieved %.1f qps "
      "goodput(slo %.0fms) %.1f qps shed_rate %.4f\n",
      report.p50_ms, report.p95_ms, report.p99_ms, report.max_ms,
      report.achieved_qps, options.slo_ms, report.goodput_qps,
      report.shed_rate);
  static const char* const kPriorityNames[] = {"interactive", "normal",
                                               "best-effort"};
  for (size_t p = 0; p < serve::net::kNumPriorities; ++p) {
    const auto& s = report.by_priority[p];
    if (s.sent == 0) continue;
    std::printf("  priority %zu (%s): sent %llu ok %llu shed %llu "
                "p50 %.3fms p99 %.3fms\n",
                p, kPriorityNames[p],
                static_cast<unsigned long long>(s.sent),
                static_cast<unsigned long long>(s.ok),
                static_cast<unsigned long long>(s.shed), s.p50_ms, s.p99_ms);
  }
  if (print_server_stats && !report.server_stats_json.empty()) {
    std::printf("server stats: %s\n", report.server_stats_json.c_str());
  }

  if (!json_path.empty()) {
    std::vector<obs::Record> records;
    obs::Record throughput;
    throughput.name = "loadgen/throughput";
    throughput.wall_seconds = report.elapsed_seconds;
    throughput.threads = options.connections;
    if (report.achieved_qps > 0.0) {
      throughput.samples_per_sec = report.achieved_qps;
    }
    throughput.count = report.ok;
    records.push_back(throughput);
    obs::Record latency;
    latency.name = "loadgen/latency";
    latency.wall_seconds = report.elapsed_seconds;
    latency.threads = options.connections;
    latency.count = report.ok;
    latency.p50_ms = report.p50_ms;
    latency.p95_ms = report.p95_ms;
    latency.p99_ms = report.p99_ms;
    records.push_back(latency);
    obs::Record goodput;
    goodput.name = "loadgen/goodput";
    goodput.wall_seconds = report.elapsed_seconds;
    goodput.threads = options.connections;
    goodput.value = report.goodput_qps;
    records.push_back(goodput);
    obs::Record shed;
    shed.name = "loadgen/shed_rate";
    shed.wall_seconds = report.elapsed_seconds;
    shed.threads = options.connections;
    shed.value = report.shed_rate;
    shed.count = report.shed;
    records.push_back(shed);
    obs::WriteRecordsJson(json_path, records);
  }

  int exit_code = 0;
  if (report.sent == 0) {
    std::fprintf(stderr, "ASSERT FAIL: no requests sent\n");
    exit_code = 1;
  }
  if (assert_max_shed_rate >= 0.0 && report.shed_rate > assert_max_shed_rate) {
    std::fprintf(stderr, "ASSERT FAIL: shed_rate %.4f > %.4f\n",
                 report.shed_rate, assert_max_shed_rate);
    exit_code = 1;
  }
  if (assert_min_shed_rate >= 0.0 && report.shed_rate < assert_min_shed_rate) {
    std::fprintf(stderr, "ASSERT FAIL: shed_rate %.4f < %.4f\n",
                 report.shed_rate, assert_min_shed_rate);
    exit_code = 1;
  }
  if (assert_max_p99_ms >= 0.0 && report.p99_ms > assert_max_p99_ms) {
    std::fprintf(stderr, "ASSERT FAIL: p99 %.3fms > %.3fms\n", report.p99_ms,
                 assert_max_p99_ms);
    exit_code = 1;
  }
  if (assert_min_goodput >= 0.0 && report.goodput_qps < assert_min_goodput) {
    std::fprintf(stderr, "ASSERT FAIL: goodput %.1f qps < %.1f qps\n",
                 report.goodput_qps, assert_min_goodput);
    exit_code = 1;
  }
  if (report.lost > 0) {
    std::fprintf(stderr, "ASSERT FAIL: %llu requests lost (no response)\n",
                 static_cast<unsigned long long>(report.lost));
    exit_code = 1;
  }
  return exit_code;
}
