// deepod_loadgen: open-loop Poisson load generator for deepod_server.
//
//   deepod_loadgen --port P [--host H] --network network.csv
//                  [--network-ids 1,2,3] [--qps Q] [--duration S]
//                  [--connections N] [--seed S]
//                  [--deadline-ms D] [--high-fraction F] [--low-fraction F]
//                  [--tenants N] [--slo-ms X] [--hot-fraction F]
//                  [--json PATH] [--server-stats]
//                  [--assert-max-shed-rate X] [--assert-min-shed-rate X]
//                  [--assert-max-p99-ms X] [--assert-min-goodput X]
//                  [--assert-min-oracle-frac X] [--assert-min-model-frac X]
//   deepod_loadgen --port P --golden golden.csv [--tolerance X] [--host H]
//                  [--network-ids N]
//
// Against a fleet server, --network-ids round-robins each request's wire
// network_id over the list (one id targets a single city; several mix
// cities — pass the smallest city's network.csv so every OD pair is valid
// everywhere). The report splits Ok responses by the estimator tag the
// server answered with (model / oracle / linkmean), and the
// --assert-min-*-frac gates turn the split into CI checks — e.g. a city
// whose model never trained must answer 100% from the oracle, with zero
// errors.
//
// Senders never wait for responses (open loop), so the offered rate stays
// at --qps even when the server sheds or slows — the overload scenario
// stays an overload. Reports client-observed p50/p95/p99, shed and error
// rates and goodput-under-SLO, plus the server's own obs registry fetched
// over the wire with --server-stats. --json writes the report as
// BENCH-json records (validate with tools/validate_bench_json.py). The
// --assert-* flags turn the run into a CI gate: exit 1 when the measured
// value crosses the bound.
//
// --golden switches to replay mode: every query of a deepod_train --golden
// file is sent over the wire and the answer compared against the recorded
// prediction — bit-for-bit without --tolerance. This is the cross-process
// twin of deepod_serve --check, and the post-hot-swap gate: replaying v2's
// golden file against a server that swapped v1 -> v2 in place must match a
// fresh v2 process exactly.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cli_flags.h"
#include "golden_file.h"
#include "io/trip_io.h"
#include "obs/metrics.h"
#include "serve/server/loadgen.h"

namespace {

// Parses "1,2,3" into network ids; false on a malformed list.
bool ParseNetworkIds(const std::string& value, std::vector<uint32_t>* out) {
  size_t start = 0;
  while (start <= value.size()) {
    size_t comma = value.find(',', start);
    if (comma == std::string::npos) comma = value.size();
    const std::string token = value.substr(start, comma - start);
    if (token.empty()) return false;
    try {
      size_t used = 0;
      const unsigned long id = std::stoul(token, &used);
      if (used != token.size()) return false;
      out->push_back(static_cast<uint32_t>(id));
    } catch (const std::exception&) {
      return false;
    }
    start = comma + 1;
  }
  return !out->empty();
}

// Replays a golden file over one connection; returns the process exit code.
int RunGoldenReplay(const std::string& host, uint16_t port,
                    const std::string& golden_path, double tolerance,
                    uint32_t network_id) {
  using namespace deepod;
  std::vector<tools::GoldenQuery> golden;
  if (!tools::ReadGoldenFile(golden_path, &golden)) {
    std::fprintf(stderr, "cannot parse %s\n", golden_path.c_str());
    return 1;
  }
  serve::net::Client client;
  if (!client.Connect(host, port)) {
    std::fprintf(stderr, "cannot connect to %s:%u\n", host.c_str(),
                 static_cast<unsigned>(port));
    return 1;
  }
  const auto matches = [tolerance](double got, double expected) {
    if (tolerance == 0.0) {
      return std::memcmp(&got, &expected, sizeof(double)) == 0;
    }
    return std::abs(got - expected) <=
           tolerance * std::max(1.0, std::abs(expected));
  };
  size_t mismatches = 0, errors = 0;
  for (size_t i = 0; i < golden.size(); ++i) {
    serve::net::RequestFrame request;
    request.request_id = i + 1;
    request.network_id = network_id;
    request.priority = 0;  // interactive: never shed by deadline estimation
    request.od = golden[i].od;
    serve::net::ResponseFrame response;
    if (!client.Send(request) || !client.ReadResponse(&response)) {
      std::fprintf(stderr, "connection lost at query %zu\n", i);
      return 1;
    }
    if (response.status != serve::net::Status::kOk) {
      if (++errors <= 5) {
        std::fprintf(stderr, "query %zu: status %s\n", i,
                     serve::net::StatusName(response.status));
      }
    } else if (!matches(response.eta_seconds, golden[i].prediction)) {
      if (++mismatches <= 5) {
        std::fprintf(stderr, "mismatch: od %zu->%zu expected %a got %a\n",
                     golden[i].od.origin_segment, golden[i].od.dest_segment,
                     golden[i].prediction, response.eta_seconds);
      }
    }
  }
  client.Close();
  const bool pass = mismatches == 0 && errors == 0 && !golden.empty();
  std::printf(
      "golden replay: %zu queries, %zu mismatches, %zu errors "
      "(tolerance %g) -> %s\n",
      golden.size(), mismatches, errors, tolerance, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepod;
  serve::net::LoadgenOptions options;
  options.fetch_server_stats = false;
  std::string network_path, json_path, golden_path;
  double tolerance = 0.0;  // 0 = bit-for-bit (golden mode)
  double assert_max_shed_rate = -1.0;
  double assert_min_shed_rate = -1.0;
  double assert_max_p99_ms = -1.0;
  double assert_min_goodput = -1.0;
  int assert_max_errors = -1;
  double assert_min_oracle_frac = -1.0;
  double assert_min_model_frac = -1.0;
  bool print_server_stats = false;
  const auto usage = [&argv] {
    std::fprintf(
        stderr,
        "usage: %s --port P --network PATH [--network-ids 1,2,3] [--host H]\n"
        "  [--qps Q] [--duration S] [--connections N] [--seed S]\n"
        "  [--deadline-ms D]\n"
        "  [--high-fraction F] [--low-fraction F] [--tenants N]\n"
        "  [--slo-ms X] [--hot-fraction F] [--json PATH] [--server-stats]\n"
        "  [--assert-max-shed-rate X] [--assert-min-shed-rate X]\n"
        "  [--assert-max-p99-ms X] [--assert-min-goodput X]\n"
        "  [--assert-max-errors N]\n"
        "  [--assert-min-oracle-frac X] [--assert-min-model-frac X]\n"
        "or: %s --port P --golden golden.csv [%s] [--host H]\n"
        "  [--network-ids N]\n",
        argv[0], argv[0], tools::cli::FlagCursor::ToleranceHelp());
    return 2;
  };
  tools::cli::FlagCursor flags(argc, argv);
  while (flags.Next()) {
    const std::string& flag = flags.flag();
    if (flag == "--host") {
      if (!flags.StringValue(&options.host)) return 2;
    } else if (flag == "--port") {
      if (!flags.PortValue(&options.port)) return 2;
    } else if (flag == "--network") {
      if (!flags.StringValue(&network_path)) return 2;
    } else if (flag == "--network-ids") {
      std::string ids;
      if (!flags.StringValue(&ids)) return 2;
      options.network_ids.clear();
      if (!ParseNetworkIds(ids, &options.network_ids)) {
        std::fprintf(stderr, "bad --network-ids '%s'\n", ids.c_str());
        return 2;
      }
    } else if (flag == "--qps") {
      if (!flags.DoubleValue(&options.qps)) return 2;
    } else if (flag == "--duration") {
      if (!flags.DoubleValue(&options.duration_seconds)) return 2;
    } else if (flag == "--connections") {
      if (!flags.SizeValue(&options.connections)) return 2;
    } else if (flag == "--seed") {
      if (!flags.U64Value(&options.seed)) return 2;
    } else if (flag == "--deadline-ms") {
      int deadline = 0;
      if (!flags.IntValue(&deadline)) return 2;
      options.deadline_ms = deadline;
    } else if (flag == "--high-fraction") {
      if (!flags.DoubleValue(&options.high_fraction)) return 2;
    } else if (flag == "--low-fraction") {
      if (!flags.DoubleValue(&options.low_fraction)) return 2;
    } else if (flag == "--tenants") {
      if (!flags.SizeValue(&options.num_tenants)) return 2;
    } else if (flag == "--slo-ms") {
      if (!flags.DoubleValue(&options.slo_ms)) return 2;
    } else if (flag == "--hot-fraction") {
      if (!flags.DoubleValue(&options.hot_fraction)) return 2;
    } else if (flag == "--json") {
      if (!flags.StringValue(&json_path)) return 2;
    } else if (flag == "--golden") {
      if (!flags.StringValue(&golden_path)) return 2;
    } else if (flag == "--tolerance") {
      if (!flags.ToleranceValue(&tolerance)) return 2;
    } else if (flag == "--server-stats") {
      options.fetch_server_stats = true;
      print_server_stats = true;
    } else if (flag == "--assert-max-shed-rate") {
      if (!flags.DoubleValue(&assert_max_shed_rate)) return 2;
    } else if (flag == "--assert-min-shed-rate") {
      if (!flags.DoubleValue(&assert_min_shed_rate)) return 2;
    } else if (flag == "--assert-max-p99-ms") {
      if (!flags.DoubleValue(&assert_max_p99_ms)) return 2;
    } else if (flag == "--assert-min-goodput") {
      if (!flags.DoubleValue(&assert_min_goodput)) return 2;
    } else if (flag == "--assert-max-errors") {
      if (!flags.IntValue(&assert_max_errors)) return 2;
    } else if (flag == "--assert-min-oracle-frac") {
      if (!flags.DoubleValue(&assert_min_oracle_frac)) return 2;
    } else if (flag == "--assert-min-model-frac") {
      if (!flags.DoubleValue(&assert_min_model_frac)) return 2;
    } else {
      return usage();
    }
  }
  if (!golden_path.empty()) {
    // Replay mode: the queries come from the golden file, so no network csv
    // (segment universe) is needed.
    if (options.port == 0) {
      std::fprintf(stderr, "--port is required\n");
      return 2;
    }
    return RunGoldenReplay(
        options.host, options.port, golden_path, tolerance,
        options.network_ids.empty() ? 0 : options.network_ids.front());
  }
  if (options.port == 0 || network_path.empty()) {
    std::fprintf(stderr, "--port and --network are required\n");
    return 2;
  }
  // The workload needs the segment-id universe; read it off the same
  // network csv the server loaded so every OD pair validates.
  const road::RoadNetwork network = io::ReadNetworkCsv(network_path);
  options.num_segments = network.num_segments();
  if (options.num_segments == 0) {
    std::fprintf(stderr, "network %s has no segments\n", network_path.c_str());
    return 1;
  }

  serve::net::LoadgenReport report;
  try {
    report = serve::net::RunLoadgen(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen failed: %s\n", e.what());
    return 1;
  }

  std::printf(
      "loadgen: offered %.1f qps for %.2fs -> sent %llu ok %llu shed %llu "
      "expired %llu errors %llu lost %llu\n",
      report.offered_qps, report.elapsed_seconds,
      static_cast<unsigned long long>(report.sent),
      static_cast<unsigned long long>(report.ok),
      static_cast<unsigned long long>(report.shed),
      static_cast<unsigned long long>(report.deadline_expired),
      static_cast<unsigned long long>(report.errors),
      static_cast<unsigned long long>(report.lost));
  std::printf(
      "latency ms: p50 %.3f p95 %.3f p99 %.3f max %.3f | achieved %.1f qps "
      "goodput(slo %.0fms) %.1f qps shed_rate %.4f\n",
      report.p50_ms, report.p95_ms, report.p99_ms, report.max_ms,
      report.achieved_qps, options.slo_ms, report.goodput_qps,
      report.shed_rate);
  if (report.oracle_ok > 0 || report.linkmean_ok > 0 ||
      !options.network_ids.empty()) {
    std::printf("estimators: model %llu oracle %llu linkmean %llu\n",
                static_cast<unsigned long long>(report.model_ok),
                static_cast<unsigned long long>(report.oracle_ok),
                static_cast<unsigned long long>(report.linkmean_ok));
  }
  static const char* const kPriorityNames[] = {"interactive", "normal",
                                               "best-effort"};
  for (size_t p = 0; p < serve::net::kNumPriorities; ++p) {
    const auto& s = report.by_priority[p];
    if (s.sent == 0) continue;
    std::printf("  priority %zu (%s): sent %llu ok %llu shed %llu "
                "p50 %.3fms p99 %.3fms\n",
                p, kPriorityNames[p],
                static_cast<unsigned long long>(s.sent),
                static_cast<unsigned long long>(s.ok),
                static_cast<unsigned long long>(s.shed), s.p50_ms, s.p99_ms);
  }
  if (print_server_stats && !report.server_stats_json.empty()) {
    std::printf("server stats: %s\n", report.server_stats_json.c_str());
  }

  if (!json_path.empty()) {
    std::vector<obs::Record> records;
    obs::Record throughput;
    throughput.name = "loadgen/throughput";
    throughput.wall_seconds = report.elapsed_seconds;
    throughput.threads = options.connections;
    if (report.achieved_qps > 0.0) {
      throughput.samples_per_sec = report.achieved_qps;
    }
    throughput.count = report.ok;
    records.push_back(throughput);
    obs::Record latency;
    latency.name = "loadgen/latency";
    latency.wall_seconds = report.elapsed_seconds;
    latency.threads = options.connections;
    latency.count = report.ok;
    latency.p50_ms = report.p50_ms;
    latency.p95_ms = report.p95_ms;
    latency.p99_ms = report.p99_ms;
    records.push_back(latency);
    obs::Record goodput;
    goodput.name = "loadgen/goodput";
    goodput.wall_seconds = report.elapsed_seconds;
    goodput.threads = options.connections;
    goodput.value = report.goodput_qps;
    records.push_back(goodput);
    obs::Record shed;
    shed.name = "loadgen/shed_rate";
    shed.wall_seconds = report.elapsed_seconds;
    shed.threads = options.connections;
    shed.value = report.shed_rate;
    shed.count = report.shed;
    records.push_back(shed);
    obs::WriteRecordsJson(json_path, records);
  }

  int exit_code = 0;
  if (report.sent == 0) {
    std::fprintf(stderr, "ASSERT FAIL: no requests sent\n");
    exit_code = 1;
  }
  if (assert_max_shed_rate >= 0.0 && report.shed_rate > assert_max_shed_rate) {
    std::fprintf(stderr, "ASSERT FAIL: shed_rate %.4f > %.4f\n",
                 report.shed_rate, assert_max_shed_rate);
    exit_code = 1;
  }
  if (assert_min_shed_rate >= 0.0 && report.shed_rate < assert_min_shed_rate) {
    std::fprintf(stderr, "ASSERT FAIL: shed_rate %.4f < %.4f\n",
                 report.shed_rate, assert_min_shed_rate);
    exit_code = 1;
  }
  if (assert_max_p99_ms >= 0.0 && report.p99_ms > assert_max_p99_ms) {
    std::fprintf(stderr, "ASSERT FAIL: p99 %.3fms > %.3fms\n", report.p99_ms,
                 assert_max_p99_ms);
    exit_code = 1;
  }
  if (assert_min_goodput >= 0.0 && report.goodput_qps < assert_min_goodput) {
    std::fprintf(stderr, "ASSERT FAIL: goodput %.1f qps < %.1f qps\n",
                 report.goodput_qps, assert_min_goodput);
    exit_code = 1;
  }
  if (assert_max_errors >= 0 &&
      report.errors > static_cast<uint64_t>(assert_max_errors)) {
    std::fprintf(stderr, "ASSERT FAIL: %llu errors > %d\n",
                 static_cast<unsigned long long>(report.errors),
                 assert_max_errors);
    exit_code = 1;
  }
  const double ok_total = static_cast<double>(report.ok);
  const double oracle_frac =
      report.ok == 0
          ? 0.0
          : static_cast<double>(report.oracle_ok + report.linkmean_ok) /
                ok_total;
  const double model_frac =
      report.ok == 0 ? 0.0 : static_cast<double>(report.model_ok) / ok_total;
  if (assert_min_oracle_frac >= 0.0 && oracle_frac < assert_min_oracle_frac) {
    std::fprintf(stderr, "ASSERT FAIL: oracle fraction %.4f < %.4f\n",
                 oracle_frac, assert_min_oracle_frac);
    exit_code = 1;
  }
  if (assert_min_model_frac >= 0.0 && model_frac < assert_min_model_frac) {
    std::fprintf(stderr, "ASSERT FAIL: model fraction %.4f < %.4f\n",
                 model_frac, assert_min_model_frac);
    exit_code = 1;
  }
  if (report.lost > 0) {
    std::fprintf(stderr, "ASSERT FAIL: %llu requests lost (no response)\n",
                 static_cast<unsigned long long>(report.lost));
    exit_code = 1;
  }
  return exit_code;
}
