#ifndef DEEPOD_TOOLS_GOLDEN_FILE_H_
#define DEEPOD_TOOLS_GOLDEN_FILE_H_

#include <cstdio>
#include <string>
#include <vector>

#include "traj/trajectory.h"

namespace deepod::tools {

// One row of a deepod_train --golden file: the OD query plus the training
// process's own prediction for it.
struct GoldenQuery {
  traj::OdInput od;
  double prediction = 0.0;
};

// Parses a deepod_train --golden file (hex-float fields, header line).
// Shared by deepod_serve --check (in-process replay) and deepod_loadgen
// --golden (over-the-wire replay) so both gates read the same format.
inline bool ReadGoldenFile(const std::string& path,
                           std::vector<GoldenQuery>* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char line[512];
  bool header = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (header) {
      header = false;
      continue;
    }
    GoldenQuery q;
    unsigned long long origin = 0, dest = 0;
    int weather = 0;
    // %la parses both hex-float and decimal doubles.
    if (std::sscanf(line, "%llu,%llu,%la,%la,%la,%d,%la", &origin, &dest,
                    &q.od.origin_ratio, &q.od.dest_ratio,
                    &q.od.departure_time, &weather, &q.prediction) != 7) {
      std::fclose(f);
      return false;
    }
    q.od.origin_segment = static_cast<size_t>(origin);
    q.od.dest_segment = static_cast<size_t>(dest);
    q.od.weather_type = weather;
    out->push_back(q);
  }
  std::fclose(f);
  return true;
}

}  // namespace deepod::tools

#endif  // DEEPOD_TOOLS_GOLDEN_FILE_H_
