// deepod_datagen: the generate half of the million-trip data plane. Builds
// a synthetic city, synthesises its trip corpus in parallel (per-trip RNG
// streams, so any --threads value produces the identical trips), and lands
// the chronological splits as mmap-ready columnar trip stores:
//
//   <out>/network.csv      the road network (io::WriteNetworkCsv)
//   <out>/shard-<k>.trips  the training split in K columnar shards
//   <out>/val.trips        the validation split, one store
//   <out>/test.trips       the test split (OD-only records), one store
//   <out>/manifest.csv     key,value pairs: the generation parameters (from
//                          which deepod_train --data deterministically
//                          rebuilds the traffic/weather environment) plus
//                          the split sizes
//
// deepod_train --data <out> --feed sharded then trains out-of-core from the
// shards; --parity-check asserts it matches the in-memory path bit-for-bit.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "datagen_manifest.h"
#include "io/trip_io.h"
#include "io/trip_store.h"
#include "sim/dataset.h"
#include "sim/trip_gen.h"
#include "util/thread_pool.h"

namespace {

struct Args {
  std::string out;
  std::string city = "xian";
  size_t grid = 0;  // 0 = keep the city preset's rows/cols
  size_t trips_per_day = 12;
  size_t num_days = 15;
  uint64_t seed = 17;
  size_t threads = 0;  // 0 = auto
  size_t shards = 4;
  bool rematch_gps = false;
  bool also_csv = false;  // additionally write train.csv (ingest comparisons)
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --out DIR [--city xian|chengdu|beijing] [--grid N]\n"
      "          [--trips-per-day N] [--days N] [--seed N] [--threads N]\n"
      "          [--shards K] [--match] [--csv]\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--out" && (v = value())) {
      args->out = v;
    } else if (flag == "--city" && (v = value())) {
      args->city = v;
    } else if (flag == "--grid" && (v = value())) {
      args->grid = std::strtoull(v, nullptr, 10);
    } else if (flag == "--trips-per-day" && (v = value())) {
      args->trips_per_day = std::strtoull(v, nullptr, 10);
    } else if (flag == "--days" && (v = value())) {
      args->num_days = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed" && (v = value())) {
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--threads" && (v = value())) {
      args->threads = std::strtoull(v, nullptr, 10);
    } else if (flag == "--shards" && (v = value())) {
      args->shards = std::strtoull(v, nullptr, 10);
    } else if (flag == "--match") {
      args->rematch_gps = true;
    } else if (flag == "--csv") {
      args->also_csv = true;
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  if (args->out.empty() || args->shards == 0) {
    Usage(argv[0]);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deepod;
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  tools::DatagenManifest manifest;
  manifest.city = args.city;
  manifest.grid = args.grid;
  manifest.trips_per_day = args.trips_per_day;
  manifest.num_days = args.num_days;
  manifest.seed = args.seed;
  manifest.shards = args.shards;
  manifest.rematch_gps = args.rematch_gps;
  const sim::DatasetConfig config = tools::ToDatasetConfig(manifest);
  const size_t threads = util::ThreadPool::ResolveThreadCount(args.threads);
  std::printf("generating %s (%zux%zu grid): %zu trips over %zu days, "
              "%zu thread(s)%s...\n",
              config.city.name.c_str(), config.city.rows, config.city.cols,
              args.trips_per_day * args.num_days, args.num_days, threads,
              args.rematch_gps ? ", GPS re-matched" : "");

  sim::TripGenOptions gen_options;
  gen_options.num_threads = threads;
  gen_options.rematch_gps = args.rematch_gps;
  const sim::Dataset dataset = sim::BuildDatasetParallel(config, gen_options);
  std::printf("dataset: %zu train / %zu val / %zu test trips, %zu segments\n",
              dataset.train.size(), dataset.validation.size(),
              dataset.test.size(), dataset.network.num_segments());

  std::filesystem::create_directories(args.out);
  io::WriteNetworkCsv(dataset.network, args.out + "/network.csv");
  const std::vector<std::string> shard_paths =
      io::WriteTripShards(args.out, "shard", dataset.train, args.shards);
  nn::ThrowIfError(
      io::WriteTripStore(args.out + "/val.trips", dataset.validation));
  nn::ThrowIfError(
      io::WriteTripStore(args.out + "/test.trips", dataset.test));
  if (args.also_csv) {
    io::WriteTripsCsv(dataset.train, args.out + "/train.csv");
  }

  manifest.train_count = dataset.train.size();
  manifest.val_count = dataset.validation.size();
  manifest.test_count = dataset.test.size();
  tools::WriteManifest(args.out + "/manifest.csv", manifest);

  size_t shard_bytes = 0;
  for (const auto& path : shard_paths) {
    shard_bytes += std::filesystem::file_size(path);
  }
  std::printf("wrote %zu shard(s), %.2f MB total: %s ... %s\n",
              shard_paths.size(),
              static_cast<double>(shard_bytes) / (1024.0 * 1024.0),
              shard_paths.front().c_str(), shard_paths.back().c_str());
  return 0;
}
