# Empty compiler generated dependencies file for encoders_test.
# This may be replaced when dependencies are built.
