file(REMOVE_RECURSE
  "CMakeFiles/traj_match_test.dir/traj_match_test.cc.o"
  "CMakeFiles/traj_match_test.dir/traj_match_test.cc.o.d"
  "traj_match_test"
  "traj_match_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traj_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
