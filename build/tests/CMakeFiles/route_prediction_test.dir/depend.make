# Empty dependencies file for route_prediction_test.
# This may be replaced when dependencies are built.
