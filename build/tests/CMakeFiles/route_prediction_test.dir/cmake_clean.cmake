file(REMOVE_RECURSE
  "CMakeFiles/route_prediction_test.dir/route_prediction_test.cc.o"
  "CMakeFiles/route_prediction_test.dir/route_prediction_test.cc.o.d"
  "route_prediction_test"
  "route_prediction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_prediction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
