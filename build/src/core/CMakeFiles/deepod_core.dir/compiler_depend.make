# Empty compiler generated dependencies file for deepod_core.
# This may be replaced when dependencies are built.
