file(REMOVE_RECURSE
  "CMakeFiles/deepod_core.dir/deepod_config.cc.o"
  "CMakeFiles/deepod_core.dir/deepod_config.cc.o.d"
  "CMakeFiles/deepod_core.dir/deepod_model.cc.o"
  "CMakeFiles/deepod_core.dir/deepod_model.cc.o.d"
  "CMakeFiles/deepod_core.dir/encoders.cc.o"
  "CMakeFiles/deepod_core.dir/encoders.cc.o.d"
  "CMakeFiles/deepod_core.dir/trainer.cc.o"
  "CMakeFiles/deepod_core.dir/trainer.cc.o.d"
  "libdeepod_core.a"
  "libdeepod_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
