
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/deepod_config.cc" "src/core/CMakeFiles/deepod_core.dir/deepod_config.cc.o" "gcc" "src/core/CMakeFiles/deepod_core.dir/deepod_config.cc.o.d"
  "/root/repo/src/core/deepod_model.cc" "src/core/CMakeFiles/deepod_core.dir/deepod_model.cc.o" "gcc" "src/core/CMakeFiles/deepod_core.dir/deepod_model.cc.o.d"
  "/root/repo/src/core/encoders.cc" "src/core/CMakeFiles/deepod_core.dir/encoders.cc.o" "gcc" "src/core/CMakeFiles/deepod_core.dir/encoders.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/deepod_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/deepod_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/deepod_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/deepod_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/deepod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/deepod_match.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/deepod_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/deepod_road.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/deepod_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deepod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
