file(REMOVE_RECURSE
  "libdeepod_core.a"
)
