
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline.cc" "src/baselines/CMakeFiles/deepod_baselines.dir/baseline.cc.o" "gcc" "src/baselines/CMakeFiles/deepod_baselines.dir/baseline.cc.o.d"
  "/root/repo/src/baselines/gbm.cc" "src/baselines/CMakeFiles/deepod_baselines.dir/gbm.cc.o" "gcc" "src/baselines/CMakeFiles/deepod_baselines.dir/gbm.cc.o.d"
  "/root/repo/src/baselines/linear_regression.cc" "src/baselines/CMakeFiles/deepod_baselines.dir/linear_regression.cc.o" "gcc" "src/baselines/CMakeFiles/deepod_baselines.dir/linear_regression.cc.o.d"
  "/root/repo/src/baselines/murat.cc" "src/baselines/CMakeFiles/deepod_baselines.dir/murat.cc.o" "gcc" "src/baselines/CMakeFiles/deepod_baselines.dir/murat.cc.o.d"
  "/root/repo/src/baselines/stnn.cc" "src/baselines/CMakeFiles/deepod_baselines.dir/stnn.cc.o" "gcc" "src/baselines/CMakeFiles/deepod_baselines.dir/stnn.cc.o.d"
  "/root/repo/src/baselines/temp.cc" "src/baselines/CMakeFiles/deepod_baselines.dir/temp.cc.o" "gcc" "src/baselines/CMakeFiles/deepod_baselines.dir/temp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/deepod_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/deepod_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/deepod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/deepod_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/deepod_road.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/deepod_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deepod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
