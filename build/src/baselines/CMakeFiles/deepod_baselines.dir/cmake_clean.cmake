file(REMOVE_RECURSE
  "CMakeFiles/deepod_baselines.dir/baseline.cc.o"
  "CMakeFiles/deepod_baselines.dir/baseline.cc.o.d"
  "CMakeFiles/deepod_baselines.dir/gbm.cc.o"
  "CMakeFiles/deepod_baselines.dir/gbm.cc.o.d"
  "CMakeFiles/deepod_baselines.dir/linear_regression.cc.o"
  "CMakeFiles/deepod_baselines.dir/linear_regression.cc.o.d"
  "CMakeFiles/deepod_baselines.dir/murat.cc.o"
  "CMakeFiles/deepod_baselines.dir/murat.cc.o.d"
  "CMakeFiles/deepod_baselines.dir/stnn.cc.o"
  "CMakeFiles/deepod_baselines.dir/stnn.cc.o.d"
  "CMakeFiles/deepod_baselines.dir/temp.cc.o"
  "CMakeFiles/deepod_baselines.dir/temp.cc.o.d"
  "libdeepod_baselines.a"
  "libdeepod_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
