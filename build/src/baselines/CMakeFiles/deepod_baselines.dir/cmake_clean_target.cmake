file(REMOVE_RECURSE
  "libdeepod_baselines.a"
)
