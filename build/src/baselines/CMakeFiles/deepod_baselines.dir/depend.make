# Empty dependencies file for deepod_baselines.
# This may be replaced when dependencies are built.
