file(REMOVE_RECURSE
  "CMakeFiles/deepod_match.dir/map_matcher.cc.o"
  "CMakeFiles/deepod_match.dir/map_matcher.cc.o.d"
  "libdeepod_match.a"
  "libdeepod_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
