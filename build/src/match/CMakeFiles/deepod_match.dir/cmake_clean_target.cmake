file(REMOVE_RECURSE
  "libdeepod_match.a"
)
