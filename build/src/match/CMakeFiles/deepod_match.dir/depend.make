# Empty dependencies file for deepod_match.
# This may be replaced when dependencies are built.
