
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/map_matcher.cc" "src/match/CMakeFiles/deepod_match.dir/map_matcher.cc.o" "gcc" "src/match/CMakeFiles/deepod_match.dir/map_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/road/CMakeFiles/deepod_road.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/deepod_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/deepod_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deepod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
