file(REMOVE_RECURSE
  "libdeepod_temporal.a"
)
