# Empty dependencies file for deepod_temporal.
# This may be replaced when dependencies are built.
