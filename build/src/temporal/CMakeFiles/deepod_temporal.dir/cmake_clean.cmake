file(REMOVE_RECURSE
  "CMakeFiles/deepod_temporal.dir/temporal_graph.cc.o"
  "CMakeFiles/deepod_temporal.dir/temporal_graph.cc.o.d"
  "CMakeFiles/deepod_temporal.dir/time_slot.cc.o"
  "CMakeFiles/deepod_temporal.dir/time_slot.cc.o.d"
  "libdeepod_temporal.a"
  "libdeepod_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
