file(REMOVE_RECURSE
  "libdeepod_util.a"
)
