# Empty dependencies file for deepod_util.
# This may be replaced when dependencies are built.
