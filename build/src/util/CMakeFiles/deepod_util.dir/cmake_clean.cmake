file(REMOVE_RECURSE
  "CMakeFiles/deepod_util.dir/alias_sampler.cc.o"
  "CMakeFiles/deepod_util.dir/alias_sampler.cc.o.d"
  "CMakeFiles/deepod_util.dir/rng.cc.o"
  "CMakeFiles/deepod_util.dir/rng.cc.o.d"
  "CMakeFiles/deepod_util.dir/stats.cc.o"
  "CMakeFiles/deepod_util.dir/stats.cc.o.d"
  "CMakeFiles/deepod_util.dir/table.cc.o"
  "CMakeFiles/deepod_util.dir/table.cc.o.d"
  "libdeepod_util.a"
  "libdeepod_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
