# Empty dependencies file for deepod_embed.
# This may be replaced when dependencies are built.
