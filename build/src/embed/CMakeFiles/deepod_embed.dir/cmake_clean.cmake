file(REMOVE_RECURSE
  "CMakeFiles/deepod_embed.dir/graph_embedding.cc.o"
  "CMakeFiles/deepod_embed.dir/graph_embedding.cc.o.d"
  "CMakeFiles/deepod_embed.dir/random_walk.cc.o"
  "CMakeFiles/deepod_embed.dir/random_walk.cc.o.d"
  "CMakeFiles/deepod_embed.dir/skipgram.cc.o"
  "CMakeFiles/deepod_embed.dir/skipgram.cc.o.d"
  "libdeepod_embed.a"
  "libdeepod_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
