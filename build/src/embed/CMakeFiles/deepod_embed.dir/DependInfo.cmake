
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/graph_embedding.cc" "src/embed/CMakeFiles/deepod_embed.dir/graph_embedding.cc.o" "gcc" "src/embed/CMakeFiles/deepod_embed.dir/graph_embedding.cc.o.d"
  "/root/repo/src/embed/random_walk.cc" "src/embed/CMakeFiles/deepod_embed.dir/random_walk.cc.o" "gcc" "src/embed/CMakeFiles/deepod_embed.dir/random_walk.cc.o.d"
  "/root/repo/src/embed/skipgram.cc" "src/embed/CMakeFiles/deepod_embed.dir/skipgram.cc.o" "gcc" "src/embed/CMakeFiles/deepod_embed.dir/skipgram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/deepod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
