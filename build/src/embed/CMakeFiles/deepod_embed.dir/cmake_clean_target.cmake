file(REMOVE_RECURSE
  "libdeepod_embed.a"
)
