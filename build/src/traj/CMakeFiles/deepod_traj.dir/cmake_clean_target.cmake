file(REMOVE_RECURSE
  "libdeepod_traj.a"
)
