file(REMOVE_RECURSE
  "CMakeFiles/deepod_traj.dir/trajectory.cc.o"
  "CMakeFiles/deepod_traj.dir/trajectory.cc.o.d"
  "libdeepod_traj.a"
  "libdeepod_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
