# Empty compiler generated dependencies file for deepod_traj.
# This may be replaced when dependencies are built.
