
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/road/city_generator.cc" "src/road/CMakeFiles/deepod_road.dir/city_generator.cc.o" "gcc" "src/road/CMakeFiles/deepod_road.dir/city_generator.cc.o.d"
  "/root/repo/src/road/edge_graph.cc" "src/road/CMakeFiles/deepod_road.dir/edge_graph.cc.o" "gcc" "src/road/CMakeFiles/deepod_road.dir/edge_graph.cc.o.d"
  "/root/repo/src/road/road_network.cc" "src/road/CMakeFiles/deepod_road.dir/road_network.cc.o" "gcc" "src/road/CMakeFiles/deepod_road.dir/road_network.cc.o.d"
  "/root/repo/src/road/routing.cc" "src/road/CMakeFiles/deepod_road.dir/routing.cc.o" "gcc" "src/road/CMakeFiles/deepod_road.dir/routing.cc.o.d"
  "/root/repo/src/road/spatial_index.cc" "src/road/CMakeFiles/deepod_road.dir/spatial_index.cc.o" "gcc" "src/road/CMakeFiles/deepod_road.dir/spatial_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/deepod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
