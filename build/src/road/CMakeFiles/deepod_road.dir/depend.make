# Empty dependencies file for deepod_road.
# This may be replaced when dependencies are built.
