file(REMOVE_RECURSE
  "libdeepod_road.a"
)
