file(REMOVE_RECURSE
  "CMakeFiles/deepod_road.dir/city_generator.cc.o"
  "CMakeFiles/deepod_road.dir/city_generator.cc.o.d"
  "CMakeFiles/deepod_road.dir/edge_graph.cc.o"
  "CMakeFiles/deepod_road.dir/edge_graph.cc.o.d"
  "CMakeFiles/deepod_road.dir/road_network.cc.o"
  "CMakeFiles/deepod_road.dir/road_network.cc.o.d"
  "CMakeFiles/deepod_road.dir/routing.cc.o"
  "CMakeFiles/deepod_road.dir/routing.cc.o.d"
  "CMakeFiles/deepod_road.dir/spatial_index.cc.o"
  "CMakeFiles/deepod_road.dir/spatial_index.cc.o.d"
  "libdeepod_road.a"
  "libdeepod_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
