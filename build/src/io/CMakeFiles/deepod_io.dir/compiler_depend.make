# Empty compiler generated dependencies file for deepod_io.
# This may be replaced when dependencies are built.
