file(REMOVE_RECURSE
  "libdeepod_io.a"
)
