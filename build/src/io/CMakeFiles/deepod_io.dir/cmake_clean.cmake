file(REMOVE_RECURSE
  "CMakeFiles/deepod_io.dir/trip_io.cc.o"
  "CMakeFiles/deepod_io.dir/trip_io.cc.o.d"
  "libdeepod_io.a"
  "libdeepod_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
