file(REMOVE_RECURSE
  "CMakeFiles/deepod_analysis.dir/metrics.cc.o"
  "CMakeFiles/deepod_analysis.dir/metrics.cc.o.d"
  "CMakeFiles/deepod_analysis.dir/tsne.cc.o"
  "CMakeFiles/deepod_analysis.dir/tsne.cc.o.d"
  "libdeepod_analysis.a"
  "libdeepod_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
