# Empty compiler generated dependencies file for deepod_analysis.
# This may be replaced when dependencies are built.
