file(REMOVE_RECURSE
  "libdeepod_analysis.a"
)
