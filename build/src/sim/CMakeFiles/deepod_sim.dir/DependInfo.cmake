
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dataset.cc" "src/sim/CMakeFiles/deepod_sim.dir/dataset.cc.o" "gcc" "src/sim/CMakeFiles/deepod_sim.dir/dataset.cc.o.d"
  "/root/repo/src/sim/speed_matrix.cc" "src/sim/CMakeFiles/deepod_sim.dir/speed_matrix.cc.o" "gcc" "src/sim/CMakeFiles/deepod_sim.dir/speed_matrix.cc.o.d"
  "/root/repo/src/sim/traffic_model.cc" "src/sim/CMakeFiles/deepod_sim.dir/traffic_model.cc.o" "gcc" "src/sim/CMakeFiles/deepod_sim.dir/traffic_model.cc.o.d"
  "/root/repo/src/sim/trip_simulator.cc" "src/sim/CMakeFiles/deepod_sim.dir/trip_simulator.cc.o" "gcc" "src/sim/CMakeFiles/deepod_sim.dir/trip_simulator.cc.o.d"
  "/root/repo/src/sim/weather.cc" "src/sim/CMakeFiles/deepod_sim.dir/weather.cc.o" "gcc" "src/sim/CMakeFiles/deepod_sim.dir/weather.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/road/CMakeFiles/deepod_road.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/deepod_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/deepod_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deepod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
