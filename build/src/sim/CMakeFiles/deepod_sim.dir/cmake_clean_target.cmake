file(REMOVE_RECURSE
  "libdeepod_sim.a"
)
