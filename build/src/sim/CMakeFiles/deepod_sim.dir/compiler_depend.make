# Empty compiler generated dependencies file for deepod_sim.
# This may be replaced when dependencies are built.
