file(REMOVE_RECURSE
  "CMakeFiles/deepod_sim.dir/dataset.cc.o"
  "CMakeFiles/deepod_sim.dir/dataset.cc.o.d"
  "CMakeFiles/deepod_sim.dir/speed_matrix.cc.o"
  "CMakeFiles/deepod_sim.dir/speed_matrix.cc.o.d"
  "CMakeFiles/deepod_sim.dir/traffic_model.cc.o"
  "CMakeFiles/deepod_sim.dir/traffic_model.cc.o.d"
  "CMakeFiles/deepod_sim.dir/trip_simulator.cc.o"
  "CMakeFiles/deepod_sim.dir/trip_simulator.cc.o.d"
  "CMakeFiles/deepod_sim.dir/weather.cc.o"
  "CMakeFiles/deepod_sim.dir/weather.cc.o.d"
  "libdeepod_sim.a"
  "libdeepod_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
