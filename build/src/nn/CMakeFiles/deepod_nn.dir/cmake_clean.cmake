file(REMOVE_RECURSE
  "CMakeFiles/deepod_nn.dir/conv.cc.o"
  "CMakeFiles/deepod_nn.dir/conv.cc.o.d"
  "CMakeFiles/deepod_nn.dir/gradcheck.cc.o"
  "CMakeFiles/deepod_nn.dir/gradcheck.cc.o.d"
  "CMakeFiles/deepod_nn.dir/lstm.cc.o"
  "CMakeFiles/deepod_nn.dir/lstm.cc.o.d"
  "CMakeFiles/deepod_nn.dir/module.cc.o"
  "CMakeFiles/deepod_nn.dir/module.cc.o.d"
  "CMakeFiles/deepod_nn.dir/ops.cc.o"
  "CMakeFiles/deepod_nn.dir/ops.cc.o.d"
  "CMakeFiles/deepod_nn.dir/optimizer.cc.o"
  "CMakeFiles/deepod_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/deepod_nn.dir/serialize.cc.o"
  "CMakeFiles/deepod_nn.dir/serialize.cc.o.d"
  "CMakeFiles/deepod_nn.dir/tensor.cc.o"
  "CMakeFiles/deepod_nn.dir/tensor.cc.o.d"
  "libdeepod_nn.a"
  "libdeepod_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
