
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv.cc" "src/nn/CMakeFiles/deepod_nn.dir/conv.cc.o" "gcc" "src/nn/CMakeFiles/deepod_nn.dir/conv.cc.o.d"
  "/root/repo/src/nn/gradcheck.cc" "src/nn/CMakeFiles/deepod_nn.dir/gradcheck.cc.o" "gcc" "src/nn/CMakeFiles/deepod_nn.dir/gradcheck.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/deepod_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/deepod_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/deepod_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/deepod_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/nn/CMakeFiles/deepod_nn.dir/ops.cc.o" "gcc" "src/nn/CMakeFiles/deepod_nn.dir/ops.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/deepod_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/deepod_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/deepod_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/deepod_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/deepod_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/deepod_nn.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/deepod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
