file(REMOVE_RECURSE
  "libdeepod_nn.a"
)
