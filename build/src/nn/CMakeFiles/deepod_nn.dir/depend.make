# Empty dependencies file for deepod_nn.
# This may be replaced when dependencies are built.
