file(REMOVE_RECURSE
  "CMakeFiles/deepod_bench_common.dir/common.cc.o"
  "CMakeFiles/deepod_bench_common.dir/common.cc.o.d"
  "libdeepod_bench_common.a"
  "libdeepod_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepod_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
