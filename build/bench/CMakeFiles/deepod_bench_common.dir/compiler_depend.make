# Empty compiler generated dependencies file for deepod_bench_common.
# This may be replaced when dependencies are built.
