file(REMOVE_RECURSE
  "libdeepod_bench_common.a"
)
