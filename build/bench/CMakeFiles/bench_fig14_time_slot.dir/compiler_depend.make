# Empty compiler generated dependencies file for bench_fig14_time_slot.
# This may be replaced when dependencies are built.
