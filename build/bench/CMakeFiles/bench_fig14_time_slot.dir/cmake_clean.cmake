file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_time_slot.dir/bench_fig14_time_slot.cc.o"
  "CMakeFiles/bench_fig14_time_slot.dir/bench_fig14_time_slot.cc.o.d"
  "bench_fig14_time_slot"
  "bench_fig14_time_slot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_time_slot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
