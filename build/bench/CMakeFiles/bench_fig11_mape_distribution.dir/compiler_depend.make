# Empty compiler generated dependencies file for bench_fig11_mape_distribution.
# This may be replaced when dependencies are built.
