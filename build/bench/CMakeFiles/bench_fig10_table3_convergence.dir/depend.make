# Empty dependencies file for bench_fig10_table3_convergence.
# This may be replaced when dependencies are built.
