
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_hyperparams.cc" "bench/CMakeFiles/bench_fig8_hyperparams.dir/bench_fig8_hyperparams.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_hyperparams.dir/bench_fig8_hyperparams.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/deepod_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/deepod_core.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/deepod_match.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/deepod_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/deepod_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/deepod_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/deepod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/deepod_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/road/CMakeFiles/deepod_road.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/deepod_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/deepod_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/deepod_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
