# Empty compiler generated dependencies file for bench_table7_embedding_ablation.
# This may be replaced when dependencies are built.
