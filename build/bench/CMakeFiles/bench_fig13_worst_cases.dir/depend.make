# Empty dependencies file for bench_fig13_worst_cases.
# This may be replaced when dependencies are built.
