file(REMOVE_RECURSE
  "CMakeFiles/ride_hailing_eta.dir/ride_hailing_eta.cpp.o"
  "CMakeFiles/ride_hailing_eta.dir/ride_hailing_eta.cpp.o.d"
  "ride_hailing_eta"
  "ride_hailing_eta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ride_hailing_eta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
