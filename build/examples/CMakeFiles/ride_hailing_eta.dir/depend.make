# Empty dependencies file for ride_hailing_eta.
# This may be replaced when dependencies are built.
