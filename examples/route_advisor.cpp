// Route advisor: the what-if extension of the library. For one OD pair it
// enumerates alternative routes and asks the trained model for a per-route
// ETA at several departure times (DeepOdModel::PredictForRoute — the
// trajectory encoder evaluated on a pseudo spatio-temporal path). The
// recommended route can flip between off-peak and rush hour, which is the
// phenomenon Fig. 1 of the paper opens with.
//
// Build & run:  ./build/examples/route_advisor
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/deepod_model.h"
#include "core/trainer.h"
#include "road/routing.h"
#include "sim/dataset.h"
#include "util/table.h"

using namespace deepod;

int main() {
  sim::DatasetConfig data_config;
  data_config.city = road::ChengduSimConfig();
  data_config.city.rows = 8;
  data_config.city.cols = 8;
  data_config.trips_per_day = 90;
  data_config.num_days = 28;
  data_config.seed = 41;
  const sim::Dataset dataset = sim::BuildDataset(data_config);

  std::printf("Training the model (this grounds the trajectory head)...\n");
  core::DeepOdConfig model_config = core::DeepOdConfig().Scaled(8);
  model_config.epochs = 7;
  model_config.loss_weight_w = 0.3;  // the aux loss binds code <-> stcode
  core::DeepOdModel model(model_config, dataset);
  core::DeepOdTrainer trainer(model, dataset);
  trainer.Train();

  // Pick a test trip with route alternatives between its endpoints.
  const auto& net = dataset.network;
  for (const auto& trip : dataset.test) {
    traj::OdInput od = trip.od;
    const auto alternatives = road::AlternativeRoutes(
        net, net.segment(od.origin_segment).to,
        net.segment(od.dest_segment).from, road::FreeFlowCost, 3);
    if (alternatives.size() < 2) continue;

    std::printf("\nOD pair: (%.0f, %.0f) -> (%.0f, %.0f), %zu alternatives\n",
                od.origin.x, od.origin.y, od.destination.x, od.destination.y,
                alternatives.size());
    util::Table table({"departure", "OD-only ETA (s)", "route A ETA (s)",
                       "route B ETA (s)", "advice"});
    for (double hour : {3.0, 8.0, 12.0, 18.0}) {
      // Keep departures within the simulated horizon: reuse the trip's day.
      const double day_start =
          std::floor(od.departure_time / temporal::kSecondsPerDay) *
          temporal::kSecondsPerDay;
      od.departure_time = day_start + hour * temporal::kSecondsPerHour;

      auto full_route = [&](const road::Route& r) {
        std::vector<size_t> segments;
        segments.push_back(od.origin_segment);
        for (size_t sid : r.segment_ids) segments.push_back(sid);
        segments.push_back(od.dest_segment);
        segments.erase(std::unique(segments.begin(), segments.end()),
                       segments.end());
        return segments;
      };
      const double od_eta = model.Predict(od);
      const double eta_a = model.PredictForRoute(od, full_route(alternatives[0]));
      const double eta_b = model.PredictForRoute(od, full_route(alternatives[1]));
      table.AddRow({util::Fmt(hour, 0) + ":00", util::Fmt(od_eta, 0),
                    util::Fmt(eta_a, 0), util::Fmt(eta_b, 0),
                    eta_a <= eta_b ? "take A" : "take B"});
    }
    table.Print();
    std::printf(
        "The OD-only ETA marginalises over routes; the per-route ETAs come\n"
        "from the trajectory encoder and can re-rank across the day.\n");
    break;
  }
  return 0;
}
