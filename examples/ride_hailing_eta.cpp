// Ride-hailing ETA desk: the workload the paper's introduction motivates.
//
// A dispatcher receives ride requests through a day and needs an ETA for
// each before any driver (and hence any route) is assigned. We train DeepOD
// once offline, then replay a day of requests, comparing its live ETAs with
// a nearest-neighbour fallback (TEMP) and with what actually happened —
// including the rush-hour windows where ETAs matter most.
//
// Build & run:  ./build/examples/ride_hailing_eta
#include <cmath>
#include <cstdio>
#include <map>

#include "analysis/metrics.h"
#include "baselines/temp.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "sim/dataset.h"
#include "util/table.h"

using namespace deepod;

int main() {
  // Offline: two months of historical orders over a mid-size city.
  sim::DatasetConfig data_config;
  data_config.city = road::ChengduSimConfig();
  data_config.city.rows = 9;
  data_config.city.cols = 9;
  data_config.trips_per_day = 110;
  data_config.num_days = 32;
  data_config.seed = 99;
  const sim::Dataset dataset = sim::BuildDataset(data_config);
  std::printf("Historical corpus: %zu orders with trajectories.\n",
              dataset.train.size());

  std::printf("Training the ETA model...\n");
  core::DeepOdConfig model_config = core::DeepOdConfig().Scaled(8);
  model_config.epochs = 8;
  model_config.loss_weight_w = 0.3;
  core::DeepOdModel model(model_config, dataset);
  core::DeepOdTrainer trainer(model, dataset);
  trainer.Train();

  baselines::TempEstimator fallback;
  fallback.Train(dataset);

  // Online: replay the test days as a request stream, bucketed by hour.
  struct HourBucket {
    std::vector<double> truth, deepod, temp;
  };
  std::map<int, HourBucket> by_hour;
  for (const auto& trip : dataset.test) {
    const int hour = static_cast<int>(
        std::fmod(trip.od.departure_time, temporal::kSecondsPerDay) /
        temporal::kSecondsPerHour);
    auto& bucket = by_hour[hour];
    bucket.truth.push_back(trip.travel_time);
    bucket.deepod.push_back(model.Predict(trip.od));
    bucket.temp.push_back(fallback.Predict(trip.od));
  }

  util::Table table({"hour", "requests", "DeepOD MAPE (%)", "TEMP MAPE (%)"});
  std::vector<double> all_truth, all_deepod, all_temp;
  for (const auto& [hour, bucket] : by_hour) {
    if (bucket.truth.size() < 8) continue;  // skip sparse night hours
    table.AddRow({std::to_string(hour), std::to_string(bucket.truth.size()),
                  util::Fmt(analysis::Mape(bucket.truth, bucket.deepod), 1),
                  util::Fmt(analysis::Mape(bucket.truth, bucket.temp), 1)});
    all_truth.insert(all_truth.end(), bucket.truth.begin(), bucket.truth.end());
    all_deepod.insert(all_deepod.end(), bucket.deepod.begin(),
                      bucket.deepod.end());
    all_temp.insert(all_temp.end(), bucket.temp.begin(), bucket.temp.end());
  }
  std::printf("\nETA accuracy by hour of day:\n");
  table.Print();
  std::printf("\nOverall: DeepOD MAPE %.1f%% vs TEMP %.1f%% over %zu requests.\n",
              analysis::Mape(all_truth, all_deepod),
              analysis::Mape(all_truth, all_temp), all_truth.size());
  std::printf(
      "Rush hours (8h, 18h) are the hardest for both; DeepOD's time-slot\n"
      "embeddings and live speed matrix keep its ETAs tighter there.\n");
  return 0;
}
