// Embedding explorer: a look inside the unsupervised pre-training stage of
// Algorithm 1 — node2vec over the trajectory-weighted edge graph (road
// segments, §4.1) and over the weekly temporal graph (time slots, §4.2).
//
// Prints nearest-neighbour segments (network-close beats straight-line
// close across the river) and the periodic similarity structure of the
// time-slot embeddings.
//
// Build & run:  ./build/examples/embedding_explorer
#include <cstdio>

#include "embed/graph_embedding.h"
#include "road/edge_graph.h"
#include "sim/dataset.h"
#include "temporal/temporal_graph.h"
#include "util/table.h"

using namespace deepod;

int main() {
  sim::DatasetConfig config;
  config.city = road::XianSimConfig();
  config.city.rows = 8;
  config.city.cols = 8;
  config.trips_per_day = 60;
  config.num_days = 20;
  config.seed = 3;
  const sim::Dataset dataset = sim::BuildDataset(config);
  const auto& net = dataset.network;

  // --- Road-segment embeddings over the trajectory-weighted edge graph ----
  const auto edge_graph =
      road::BuildEdgeGraph(net, dataset.TrainSegmentSequences());
  embed::EmbedOptions options;
  options.dim = 16;
  options.walks_per_node = 8;
  util::Rng rng(42);
  std::printf("Embedding %zu road segments (node2vec over the edge graph)...\n",
              edge_graph.num_nodes());
  const auto road_emb =
      embed::EmbedGraph(edge_graph, embed::EmbedMethod::kNode2Vec, options, rng);

  // Nearest neighbours of a few segments in embedding space.
  auto nearest = [&](size_t sid, size_t k) {
    std::vector<std::pair<double, size_t>> scored;
    for (size_t other = 0; other < road_emb.size(); ++other) {
      if (other == sid) continue;
      scored.push_back({embed::CosineSimilarity(road_emb[sid], road_emb[other]),
                        other});
    }
    std::sort(scored.rbegin(), scored.rend());
    scored.resize(k);
    return scored;
  };
  util::Table table({"segment", "neighbour", "cosine", "straight-line gap (m)"});
  for (size_t sid : {size_t{0}, net.num_segments() / 2, net.num_segments() - 3}) {
    const road::Point mid = net.PointAlong(sid, 0.5);
    for (const auto& [sim_score, other] : nearest(sid, 3)) {
      const road::Point other_mid = net.PointAlong(other, 0.5);
      table.AddRow({std::to_string(sid), std::to_string(other),
                    util::Fmt(sim_score, 3),
                    util::Fmt(road::Distance(mid, other_mid), 0)});
    }
  }
  std::printf("\nNearest neighbours in road-segment embedding space:\n");
  table.Print();
  std::printf(
      "Neighbours are network-adjacent segments (small gaps); segments on\n"
      "opposite river banks embed apart even when spatially close.\n");

  // --- Time-slot embeddings over the weekly temporal graph ----------------
  const temporal::TimeSlotter slotter(0.0, 3600.0);  // hourly for display
  const auto temporal_graph = temporal::BuildWeeklyTemporalGraph(slotter);
  std::printf("\nEmbedding %zu weekly time slots...\n",
              temporal_graph.num_nodes());
  embed::EmbedOptions time_options;
  time_options.dim = 16;
  time_options.walks_per_node = 10;
  const auto time_emb = embed::EmbedGraph(
      temporal_graph, embed::EmbedMethod::kNode2Vec, time_options, rng);

  // Similarity of Monday 8am to selected slots — the daily/weekly structure
  // the temporal graph builds in (Fig. 5b).
  const size_t monday_8am = 8;
  util::Table time_table({"slot", "cosine vs Monday 8am"});
  auto add = [&](const char* label, size_t slot) {
    time_table.AddRow({label, util::Fmt(embed::CosineSimilarity(
                                  time_emb[monday_8am], time_emb[slot]), 3)});
  };
  add("Monday 9am (next slot)", 9);
  add("Tuesday 8am (next day)", 24 + 8);
  add("Friday 8am", 4 * 24 + 8);
  add("Monday 8pm", 20);
  add("Saturday 3am", 5 * 24 + 3);
  std::printf("\nTemporal-graph embedding structure:\n");
  time_table.Print();
  std::printf(
      "Adjacent slots and same-hour-next-day slots score high (the graph's\n"
      "two edge types); unrelated hours score low.\n");
  return 0;
}
