// Quickstart: the smallest end-to-end DeepOD session.
//
//  1. Simulate a city and two months of taxi trips.
//  2. Train DeepOD (Algorithm 1: offline training with trajectories).
//  3. Answer OD travel-time queries online (no trajectory needed).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "analysis/metrics.h"
#include "core/deepod_model.h"
#include "core/trainer.h"
#include "sim/dataset.h"

using namespace deepod;

int main() {
  // 1. A synthetic city with a river and rush-hour congestion, plus trips.
  sim::DatasetConfig data_config;
  data_config.city = road::XianSimConfig();
  data_config.city.rows = 8;
  data_config.city.cols = 8;
  data_config.trips_per_day = 80;
  data_config.num_days = 30;
  data_config.seed = 7;
  std::printf("Simulating %s...\n", data_config.city.name.c_str());
  const sim::Dataset dataset = sim::BuildDataset(data_config);
  std::printf("  %zu road segments, %zu train / %zu validation / %zu test trips\n",
              dataset.network.num_segments(), dataset.train.size(),
              dataset.validation.size(), dataset.test.size());

  // 2. Train DeepOD. Scaled(8) shrinks the paper's layer widths so this
  //    example runs in well under a minute on one CPU core.
  core::DeepOdConfig model_config = core::DeepOdConfig().Scaled(8);
  model_config.epochs = 6;
  model_config.loss_weight_w = 0.3;  // auxiliary trajectory-binding weight
  std::printf("Training DeepOD (%d epochs)...\n", model_config.epochs);
  core::DeepOdModel model(model_config, dataset);
  core::DeepOdTrainer trainer(model, dataset);
  const double val_mae = trainer.Train(
      [](size_t step, double mae) {
        std::printf("  step %4zu  validation MAE %.1f s\n", step, mae);
      },
      /*eval_every=*/100);
  std::printf("Done. Validation MAE %.1f s after %zu steps.\n", val_mae,
              trainer.steps_taken());

  // 3. Online estimation: only the OD input is available (origin point,
  //    destination point, departure time, weather) — the paper's setting.
  std::printf("\nSample queries:\n");
  for (size_t i = 0; i < 5 && i < dataset.test.size(); ++i) {
    const auto& trip = dataset.test[i];
    const double estimate = model.Predict(trip.od);
    std::printf(
        "  (%.0f, %.0f) -> (%.0f, %.0f) departing %5.1f h: estimated %5.0f s,"
        " actual %5.0f s\n",
        trip.od.origin.x, trip.od.origin.y, trip.od.destination.x,
        trip.od.destination.y,
        trip.od.departure_time / temporal::kSecondsPerHour, estimate,
        trip.travel_time);
  }

  // Aggregate accuracy on the full test split.
  std::vector<double> truth, pred;
  for (const auto& trip : dataset.test) {
    truth.push_back(trip.travel_time);
    pred.push_back(model.Predict(trip.od));
  }
  const auto metrics = analysis::AllMetrics(truth, pred);
  std::printf("\nTest metrics: MAE %.1f s | MAPE %.1f%% | MARE %.1f%%\n",
              metrics.mae, metrics.mape, metrics.mare);
  return 0;
}
