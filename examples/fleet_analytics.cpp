// Fleet analytics: exercising the substrate libraries directly — map
// matching noisy GPS probes back onto the road network, measuring congestion
// from the matched trajectories, and comparing against the simulator's
// ground truth speed field.
//
// This is the data-engineering half of the paper's pipeline (§2 and §6.1:
// raw GPS -> map matching -> spatio-temporal paths).
//
// Build & run:  ./build/examples/fleet_analytics
#include <cstdio>
#include <map>
#include <set>

#include "match/map_matcher.h"
#include "road/city_generator.h"
#include "sim/traffic_model.h"
#include "sim/trip_simulator.h"
#include "sim/weather.h"
#include "util/rng.h"
#include "util/table.h"

using namespace deepod;

int main() {
  // A small city and its traffic processes.
  road::CityConfig city_config = road::XianSimConfig();
  city_config.rows = 7;
  city_config.cols = 7;
  const road::RoadNetwork net = road::GenerateCity(city_config);
  const sim::TrafficModel traffic(net);
  const sim::WeatherProcess weather(3 * temporal::kSecondsPerDay, 11);
  sim::TripSimulator::Options sim_options;
  sim_options.gps_period = 4.0;
  sim_options.gps_noise_m = 10.0;
  const sim::TripSimulator simulator(net, traffic, weather, sim_options);
  const match::MapMatcher matcher(net);
  util::Rng rng(2025);

  std::printf("City: %zu vertices, %zu segments.\n", net.num_vertices(),
              net.num_segments());

  // Drive two probe waves — morning rush and late night — match their GPS
  // traces, and measure fleet speeds from the matched trajectories.
  struct Wave {
    const char* label;
    double start_hour;
    double dist = 0.0, seconds = 0.0;  // by road dominance: arterial share
    double arterial_dist = 0.0, arterial_seconds = 0.0;
    double local_dist = 0.0, local_seconds = 0.0;
  };
  std::vector<Wave> waves = {{"rush (8am)", 7.5}, {"night (3am)", 2.5}};
  size_t matched = 0, total = 0, segment_hits = 0, segment_truth = 0;
  constexpr int kTripsPerWave = 40;
  for (auto& wave : waves) {
    for (int i = 0; i < kTripsPerWave; ++i) {
      const temporal::Timestamp depart =
          wave.start_hour * temporal::kSecondsPerHour + rng.Uniform(0.0, 3600.0);
      const auto record = simulator.SimulateTrip(depart, rng);
      const auto raw = simulator.EmitGps(record, rng);
      const auto result = matcher.Match(raw);
      ++total;
      if (result.empty()) continue;
      ++matched;
      // Route recovery vs ground truth.
      std::set<size_t> ids;
      for (size_t sid : result.SegmentIds()) ids.insert(sid);
      for (size_t sid : record.trajectory.SegmentIds()) {
        ++segment_truth;
        segment_hits += ids.count(sid) > 0;
      }
      // Fleet speed from the matched trajectory: travelled length over
      // duration, split by the trip's dominant road class.
      const double dist = result.TravelledLength(net);
      const double seconds = result.travel_time();
      if (seconds <= 1.0) continue;
      wave.dist += dist;
      wave.seconds += seconds;
      double arterial_len = 0.0, total_len = 0.0;
      for (size_t sid : result.SegmentIds()) {
        const auto& seg = net.segment(sid);
        total_len += seg.length;
        if (seg.road_class == road::RoadClass::kArterial) {
          arterial_len += seg.length;
        }
      }
      if (arterial_len > 0.5 * total_len) {
        wave.arterial_dist += dist;
        wave.arterial_seconds += seconds;
      } else {
        wave.local_dist += dist;
        wave.local_seconds += seconds;
      }
    }
  }
  std::printf("Matched %zu/%zu probe traces; %.1f%% of travelled segments "
              "recovered.\n",
              matched, total,
              100.0 * static_cast<double>(segment_hits) /
                  static_cast<double>(segment_truth));

  util::Table table({"wave", "fleet speed (m/s)", "arterial-heavy trips",
                     "local-heavy trips"});
  for (const auto& wave : waves) {
    auto speed = [](double d, double s) {
      return s > 0 ? util::Fmt(d / s, 2) : std::string("-");
    };
    table.AddRow({wave.label, speed(wave.dist, wave.seconds),
                  speed(wave.arterial_dist, wave.arterial_seconds),
                  speed(wave.local_dist, wave.local_seconds)});
  }
  std::printf("\nFleet speeds measured from matched trajectories:\n");
  table.Print();
  std::printf(
      "\nThe rush-hour fleet moves markedly slower than the night fleet —\n"
      "the congestion signal DeepOD's trajectory encoder learns from — and\n"
      "arterial-heavy trips lose the most at 8am (commuter flow).\n");
  return 0;
}
